(* Threaded-code block JIT for the functional simulator.

   The interpreter in [Functional] re-dispatches on every token
   delivery: pattern-match the target, pattern-match the consumer's
   opcode, re-derive readiness from option arrays, and round-trip every
   operand through a FIFO. This module compiles each decoded block
   image once into a web of pre-resolved closures — the software
   analogue of threaded code:

   - every static *target* becomes a sink closure that already knows
     its consumer's slot, predication polarity, store LSID slot and
     readiness discipline, so delivery is one indirect call;
   - every static *instruction* becomes a fire closure with the opcode
     dispatch, immediate, latency class, statistics class and target
     fan-out resolved at compile time ([Alu.jit1]/[Alu.jit2]);
   - readiness is a countdown ([missing] operands+predicate) instead of
     re-scanning option arrays, so the common case is one decrement;
   - token delivery recurses directly into the consumer's sink instead
     of going through a queue. Intra-block dataflow firing is
     confluent (each operand slot receives exactly one value in a
     well-formed block, and loads fire only once all lower-LSID stores
     have resolved), so depth-first delivery computes the same fired
     set, the same values and the same committed outputs as the
     interpreter's breadth-first drain. Recursion depth is bounded by
     the block size (≤128 instructions).

   Compiled code captures only immutable per-block facts; all run-time
   state lives in the [state] record threaded through every closure, so
   one compiled program is shared across runs and across domains. Code
   is cached per [Program.digest] exactly like [Block_image].

   Semantics — including malformed-block diagnostics and [Stats]
   accounting — must stay identical to the interpreter: the
   JIT-vs-interpreter differential tests compare outcomes, memory
   images, store counts, stats and error text over the fuzz corpus. *)

module Block = Edge_isa.Block
module Instr = Edge_isa.Instr
module Opcode = Edge_isa.Opcode
module Target = Edge_isa.Target
module Token = Edge_isa.Token
module Mem = Edge_isa.Mem
module Program = Edge_isa.Program
module Bi = Block_image

(* Salted into disk-cache and memo keys: bump on any change to the
   compiled representation or its semantics. *)
let revision = "jit-1"

exception Malformed of string

let fail fmt = Format.kasprintf (fun s -> raise (Malformed s)) fmt

type store_resolution =
  | Unresolved
  | Stored of { addr : int64; value : int64; width : Opcode.width; exc : bool }
  | Nulled

(* Mutable run-time state, capacity-sized over the whole program and
   cleared per block. Flat token arrays plus set-flags replace the
   interpreter's option arrays so the hot path never allocates [Some]. *)
type state = {
  mutable regs : int64 array;
  mutable mem : Mem.t;
  mutable stats : Stats.t;
  left : Token.t array;
  lset : bool array;
  right : Token.t array;
  rset : bool array;
  pred_matched : bool array;
  pred_exc : bool array;
  fired : bool array;
  missing : int array;  (* countdown: operands + matching predicate *)
  writes : Token.t array;
  wset : bool array;
  stores : store_resolution array;
  mutable branch_set : bool;
  mutable branch_tgt : string option;
  mutable branch_idx : int;
  mutable branch_exc : bool;
  mutable pending_loads : int list;  (* instr ids deferred on LSID order *)
  mutable writes_set : int;  (* count of set write slots, for completion *)
  mutable stores_unres : int;  (* count of Unresolved store slots *)
}

type cblock = {
  img : Bi.t;
  init_missing : int array;
  pred_ids : int array;  (* predicated instruction ids, for the
                            mispredication count at commit *)
  enter : state -> unit;
      (* seed register reads and 0-operand instructions, then run the
         block to quiescence by direct recursion; raises [Malformed] *)
}

type t = { imgp : Bi.program; cblocks : cblock array }
type outcome = {
  exit_taken : string option;
  exit_idx : int;  (* resolved block index of [exit_taken]; -1 if unknown *)
  faulted : string option;
}

let zero_tok = Token.of_int64 0L

(* Hot-path note: every index baked into a compiled closure is
   validated against the block image at compile time (and the state
   arrays are capacity-sized over the whole program), so the
   per-delivery path uses unchecked array access. *)

let make_state (code : t) ~regs ~mem ~stats =
  let imgp = code.imgp in
  let cap_n = max 1 imgp.Bi.max_n in
  {
    regs;
    mem;
    stats;
    left = Array.make cap_n zero_tok;
    lset = Array.make cap_n false;
    right = Array.make cap_n zero_tok;
    rset = Array.make cap_n false;
    pred_matched = Array.make cap_n false;
    pred_exc = Array.make cap_n false;
    fired = Array.make cap_n false;
    missing = Array.make cap_n 0;
    writes = Array.make (max 1 imgp.Bi.max_writes) zero_tok;
    wset = Array.make (max 1 imgp.Bi.max_writes) false;
    stores = Array.make (max 1 imgp.Bi.max_stores) Unresolved;
    branch_set = false;
    branch_tgt = None;
    branch_idx = -1;
    branch_exc = false;
    pending_loads = [];
    writes_set = 0;
    stores_unres = 0;
  }

(* fused hand-written clears: for the short blocks that dominate the
   BB configuration, eight [Array.fill]/[blit] calls cost more than the
   stores they perform. Predicate state is only ever read by predicated
   instructions, so blocks without any skip those two arrays. *)
let prepare (cb : cblock) st =
  let img = cb.img in
  let n = img.Bi.n in
  let init = cb.init_missing in
  for i = 0 to n - 1 do
    Array.unsafe_set st.lset i false;
    Array.unsafe_set st.rset i false;
    Array.unsafe_set st.fired i false;
    Array.unsafe_set st.missing i (Array.unsafe_get init i)
  done;
  if Array.length cb.pred_ids > 0 then
    for i = 0 to n - 1 do
      Array.unsafe_set st.pred_matched i false;
      Array.unsafe_set st.pred_exc i false
    done;
  for w = 0 to img.Bi.n_writes - 1 do
    Array.unsafe_set st.wset w false
  done;
  for k = 0 to img.Bi.n_stores - 1 do
    Array.unsafe_set st.stores k Unresolved
  done;
  st.branch_set <- false;
  st.branch_tgt <- None;
  st.branch_idx <- -1;
  st.branch_exc <- false;
  st.pending_loads <- [];
  st.writes_set <- 0;
  st.stores_unres <- img.Bi.n_stores

let resolve_store st ~slot ~lsid r =
  if slot < 0 then fail "store lsid %d not declared" lsid;
  (match st.stores.(slot) with
  | Unresolved -> ()
  | Stored _ | Nulled -> fail "store lsid %d resolved twice" lsid);
  st.stores.(slot) <- r;
  st.stores_unres <- st.stores_unres - 1

(* Byte-accurate store-to-load forwarding; [lower] holds the store
   slots with LSID below the load's, in ascending-LSID order (the
   compile-time residue of the interpreter's [store_order] scan). *)
let read_fwd st ~width ~addr ~(lower : int array) =
  let nbytes = Mem.width_bytes width in
  let base_tok = Mem.load st.mem ~width ~addr in
  if base_tok.Token.exc then base_tok
  else begin
    (* with no [Stored] resolution below this load, the overlay is a
       no-op and the byte merge would reproduce [base_tok] exactly *)
    let rec any_stored k =
      k < Array.length lower
      && (match Array.unsafe_get st.stores (Array.unsafe_get lower k) with
         | Stored _ -> true
         | Unresolved | Nulled -> any_stored (k + 1))
    in
    if not (any_stored 0) then base_tok
    else begin
    let bytes = Bytes.create nbytes in
    for i = 0 to nbytes - 1 do
      Bytes.set bytes i
        (Char.chr
           (Int64.to_int
              (Int64.logand
                 (Int64.shift_right_logical base_tok.Token.payload (8 * i))
                 0xFFL)))
    done;
    let exc = ref false in
    for k = 0 to Array.length lower - 1 do
      match st.stores.(lower.(k)) with
      | Stored { addr = sa; value; width = sw; exc = se } ->
          let sbytes = Mem.width_bytes sw in
          for i = 0 to sbytes - 1 do
            let byte_addr = Int64.add sa (Int64.of_int i) in
            let off = Int64.sub byte_addr addr in
            if off >= 0L && off < Int64.of_int nbytes then begin
              if se then exc := true;
              Bytes.set bytes (Int64.to_int off)
                (Char.chr
                   (Int64.to_int
                      (Int64.logand (Int64.shift_right_logical value (8 * i))
                         0xFFL)))
            end
          done
      | Unresolved | Nulled -> ()
    done;
    let v = ref 0L in
    for i = nbytes - 1 downto 0 do
      v :=
        Int64.logor (Int64.shift_left !v 8)
          (Int64.of_int (Char.code (Bytes.get bytes i)))
    done;
    let v =
      match width with
      | Opcode.W1 ->
          if Int64.logand !v 0x80L <> 0L then Int64.logor !v (Int64.lognot 0xFFL)
          else !v
      | Opcode.W4 ->
          if Int64.logand !v 0x80000000L <> 0L then
            Int64.logor !v (Int64.lognot 0xFFFFFFFFL)
          else !v
      | Opcode.W8 -> !v
    in
    let tok = Token.of_int64 v in
    if !exc then Token.with_exc tok else tok
    end
  end

let rec stores_resolved st (lower : int array) k =
  k >= Array.length lower
  || (match Array.unsafe_get st.stores (Array.unsafe_get lower k) with Unresolved -> false | _ -> true)
     && stores_resolved st lower (k + 1)

(* parity with the interpreter, which hits the same out-of-range array
   access uncaught (a compiler bug, not a program fault) *)
let out_of_bounds : state -> Token.t -> unit =
 fun _ _ -> invalid_arg "index out of bounds"

let compose (ss : (state -> Token.t -> unit) array) : state -> Token.t -> unit
    =
  match Array.length ss with
  | 0 -> fun _ _ -> ()
  | 1 -> ss.(0)
  | 2 ->
      let s0 = ss.(0) and s1 = ss.(1) in
      fun st tok ->
        s0 st tok;
        s1 st tok
  | 3 ->
      let s0 = ss.(0) and s1 = ss.(1) and s2 = ss.(2) in
      fun st tok ->
        s0 st tok;
        s1 st tok;
        s2 st tok
  | 4 ->
      let s0 = ss.(0) and s1 = ss.(1) and s2 = ss.(2) and s3 = ss.(3) in
      fun st tok ->
        s0 st tok;
        s1 st tok;
        s2 st tok;
        s3 st tok
  | _ -> fun st tok -> Array.iter (fun s -> s st tok) ss

let compile_block ~(resolve : string -> int) (img : Bi.t) : cblock =
  let n = img.Bi.n in
  let instrs = img.Bi.instrs in
  let fires : (state -> unit) array = Array.make (max 1 n) (fun _ -> ()) in
  let init_missing =
    Array.init n (fun j ->
        let i = instrs.(j) in
        i.Bi.arity + if i.Bi.predicated then 1 else 0)
  in
  (* full readiness re-check, the fallback for consumers the countdown
     cannot cover (Sand short-circuit, stores nulled at delivery,
     spurious deliveries to already-satisfied slots) — replicates the
     interpreter's [ready] exactly *)
  let checks : (state -> unit) array =
    Array.init n (fun j ->
        let i = instrs.(j) in
        let predicated = i.Bi.predicated in
        match i.Bi.op with
        | Opcode.Sand ->
            fun st ->
              if
                (not (Array.unsafe_get st.fired j))
                && ((not predicated) || Array.unsafe_get st.pred_matched j)
                && Array.unsafe_get st.lset j
                && ((not (Token.as_predicate (Array.unsafe_get st.left j))) || Array.unsafe_get st.rset j)
              then (Array.unsafe_get fires j) st
        | _ ->
            let a = i.Bi.arity in
            fun st ->
              if
                (not (Array.unsafe_get st.fired j))
                && ((not predicated) || Array.unsafe_get st.pred_matched j)
                && (a < 1 || Array.unsafe_get st.lset j)
                && (a < 2 || Array.unsafe_get st.rset j)
              then (Array.unsafe_get fires j) st)
  in
  let retry_loads st =
    let loads = st.pending_loads in
    st.pending_loads <- [];
    List.iter (fun id -> if not (Array.unsafe_get st.fired id) then (Array.unsafe_get fires id) st) loads
  in
  (* [managed j] = readiness fully expressible as a countdown *)
  let managed j =
    match instrs.(j).Bi.op with Opcode.Sand | Opcode.St _ -> false | _ -> true
  in
  let sink_of (t : Target.t) : state -> Token.t -> unit =
    match t with
    | Target.To_write w ->
        if w < 0 || w >= img.Bi.n_writes then out_of_bounds
        else
          let msg = Printf.sprintf "write slot %d received two tokens" w in
          fun st tok ->
            if Array.unsafe_get st.wset w then raise (Malformed msg);
            Array.unsafe_set st.wset w true;
            Array.unsafe_set st.writes w tok;
            st.writes_set <- st.writes_set + 1
    | Target.To_instr { id = j; slot } -> (
        if j < 0 || j >= n then out_of_bounds
        else
          let c = instrs.(j) in
          match slot with
          | Target.Pred ->
              if not c.Bi.predicated then
                let msg =
                  Printf.sprintf
                    "I%d: predicate delivered to unpredicated instruction" j
                in
                fun _ _ -> raise (Malformed msg)
              else
                let want =
                  match c.Bi.pred with
                  | Instr.If_true -> true
                  | Instr.If_false -> false
                  | Instr.Unpredicated -> assert false
                in
                let msg = Printf.sprintf "I%d: two matching predicates" j in
                if managed j then (
                  fun st tok ->
                    if Token.as_predicate tok = want then begin
                      if Array.unsafe_get st.pred_matched j then raise (Malformed msg);
                      Array.unsafe_set st.pred_matched j true;
                      Array.unsafe_set st.pred_exc j tok.Token.exc;
                      let m = Array.unsafe_get st.missing j - 1 in
                      Array.unsafe_set st.missing j m;
                      if m = 0 then (Array.unsafe_get fires j) st
                    end)
                else
                  fun st tok ->
                    if Token.as_predicate tok = want then begin
                      if Array.unsafe_get st.pred_matched j then raise (Malformed msg);
                      Array.unsafe_set st.pred_matched j true;
                      Array.unsafe_set st.pred_exc j tok.Token.exc;
                      (Array.unsafe_get checks j) st
                    end
          | Target.Left | Target.Right -> (
              let is_left = slot = Target.Left in
              let msg =
                Printf.sprintf "I%d: operand %s delivered twice" j
                  (if is_left then "L" else "R")
              in
              match c.Bi.op with
              | Opcode.St _ ->
                  (* a null token arriving at a store resolves it
                     immediately as a null store (Section 4.2) *)
                  let slot_idx = Bi.store_slot_of img c.Bi.lsid in
                  let lsid = c.Bi.lsid in
                  let nmsg = Printf.sprintf "I%d: null for fired store" j in
                  fun st tok ->
                    if tok.Token.null then begin
                      if Array.unsafe_get st.fired j then raise (Malformed nmsg);
                      Array.unsafe_set st.fired j true;
                      st.stats.Stats.nulls_executed <-
                        st.stats.Stats.nulls_executed + 1;
                      resolve_store st ~slot:slot_idx ~lsid Nulled;
                      retry_loads st
                    end
                    else begin
                      let set = if is_left then st.lset else st.rset in
                      if Array.unsafe_get set j then raise (Malformed msg);
                      Array.unsafe_set set j true;
                      Array.unsafe_set (if is_left then st.left else st.right) j tok;
                      (Array.unsafe_get checks j) st
                    end
              | Opcode.Sand ->
                  (* short-circuit AND: readiness inlined so the hot
                     Hyper/Both predicate-merge chains skip the generic
                     [checks] indirection; a delivered right operand
                     never needs the left-value probe *)
                  let pred_j = c.Bi.predicated in
                  if is_left then (
                    fun st tok ->
                      if Array.unsafe_get st.lset j then raise (Malformed msg);
                      Array.unsafe_set st.lset j true;
                      Array.unsafe_set st.left j tok;
                      if
                        (not (Array.unsafe_get st.fired j))
                        && ((not pred_j) || Array.unsafe_get st.pred_matched j)
                        && ((not (Token.as_predicate tok))
                           || Array.unsafe_get st.rset j)
                      then (Array.unsafe_get fires j) st)
                  else (
                    fun st tok ->
                      if Array.unsafe_get st.rset j then raise (Malformed msg);
                      Array.unsafe_set st.rset j true;
                      Array.unsafe_set st.right j tok;
                      if
                        (not (Array.unsafe_get st.fired j))
                        && ((not pred_j) || Array.unsafe_get st.pred_matched j)
                        && Array.unsafe_get st.lset j
                      then (Array.unsafe_get fires j) st)
              | _ ->
                  let canonical =
                    managed j
                    && if is_left then c.Bi.arity >= 1 else c.Bi.arity >= 2
                  in
                  if canonical then
                    if is_left then (
                      fun st tok ->
                        if Array.unsafe_get st.lset j then raise (Malformed msg);
                        Array.unsafe_set st.lset j true;
                        Array.unsafe_set st.left j tok;
                        let m = Array.unsafe_get st.missing j - 1 in
                        Array.unsafe_set st.missing j m;
                        if m = 0 then (Array.unsafe_get fires j) st)
                    else (
                      fun st tok ->
                        if Array.unsafe_get st.rset j then raise (Malformed msg);
                        Array.unsafe_set st.rset j true;
                        Array.unsafe_set st.right j tok;
                        let m = Array.unsafe_get st.missing j - 1 in
                        Array.unsafe_set st.missing j m;
                        if m = 0 then (Array.unsafe_get fires j) st)
                  else
                    fun st tok ->
                      let set = if is_left then st.lset else st.rset in
                      if Array.unsafe_get set j then raise (Malformed msg);
                      Array.unsafe_set set j true;
                      Array.unsafe_set (if is_left then st.left else st.right) j tok;
                      (Array.unsafe_get checks j) st))
  in
  let compile_fire id : state -> unit =
    let i = instrs.(id) in
    let send = compose (Array.map sink_of i.Bi.targets) in
    let predicated = i.Bi.predicated in
    match i.Bi.op with
    | Opcode.Ld width ->
        let lsid = i.Bi.lsid in
        let imm = i.Bi.imm in
        let lower =
          (* store slots the load must wait on / forward from, in
             ascending-LSID order *)
          let acc = ref [] in
          for k = img.Bi.n_stores - 1 downto 0 do
            let slot = img.Bi.store_order.(k) in
            if img.Bi.store_lsids.(slot) < lsid then acc := slot :: !acc
          done;
          Array.of_list !acc
        in
        let no_lower = Array.length lower = 0 in
        fun st ->
          if not (Array.unsafe_get st.fired id) then
            if no_lower || stores_resolved st lower 0 then begin
              Array.unsafe_set st.fired id true;
              st.stats.Stats.instrs_executed <-
                st.stats.Stats.instrs_executed + 1;
              let base = Array.unsafe_get st.left id in
              let addr = Int64.add base.Token.payload imm in
              let tok =
                if base.Token.exc || base.Token.null then
                  Token.taint base zero_tok
                else if no_lower then Mem.load st.mem ~width ~addr
                else read_fwd st ~width ~addr ~lower
              in
              let tok = Token.taint base tok in
              let tok =
                if predicated && Array.unsafe_get st.pred_exc id then
                  Token.with_exc tok
                else tok
              in
              send st tok
            end
            else if not (List.mem id st.pending_loads) then
              st.pending_loads <- id :: st.pending_loads
    | Opcode.St width ->
        let slot = Bi.store_slot_of img i.Bi.lsid in
        let lsid = i.Bi.lsid in
        let imm = i.Bi.imm in
        fun st ->
          if not (Array.unsafe_get st.fired id) then begin
            Array.unsafe_set st.fired id true;
            st.stats.Stats.instrs_executed <-
              st.stats.Stats.instrs_executed + 1;
            let base = Array.unsafe_get st.left id and v = Array.unsafe_get st.right id in
            if v.Token.null || base.Token.null then begin
              resolve_store st ~slot ~lsid Nulled;
              retry_loads st
            end
            else begin
              let addr = Int64.add base.Token.payload imm in
              let exc = base.Token.exc || v.Token.exc || Array.unsafe_get st.pred_exc id in
              resolve_store st ~slot ~lsid
                (Stored { addr; value = v.Token.payload; width; exc });
              retry_loads st
            end
          end
    | Opcode.Bro ->
        let exit_ok =
          i.Bi.exit_idx >= 0 && i.Bi.exit_idx < Array.length img.Bi.exits
        in
        let tgt_opt =
          if not exit_ok then None
          else
            let t = img.Bi.exits.(i.Bi.exit_idx) in
            if String.equal t Block.halt_exit then None else Some t
        in
        let tgt_idx = match tgt_opt with None -> -1 | Some t -> resolve t in
        fun st ->
          if not (Array.unsafe_get st.fired id) then begin
            Array.unsafe_set st.fired id true;
            st.stats.Stats.instrs_executed <-
              st.stats.Stats.instrs_executed + 1;
            if st.branch_set then fail "two branches fired";
            if not exit_ok then invalid_arg "index out of bounds";
            st.branch_set <- true;
            st.branch_tgt <- tgt_opt;
            st.branch_idx <- tgt_idx;
            st.branch_exc <- Array.unsafe_get st.pred_exc id
          end
    | Opcode.Halt ->
        fun st ->
          if not (Array.unsafe_get st.fired id) then begin
            Array.unsafe_set st.fired id true;
            st.stats.Stats.instrs_executed <-
              st.stats.Stats.instrs_executed + 1;
            if st.branch_set then fail "two branches fired";
            st.branch_set <- true;
            st.branch_tgt <- None;
            st.branch_exc <- Array.unsafe_get st.pred_exc id
          end
    | Opcode.Sand ->
        fun st ->
          if not (Array.unsafe_get st.fired id) then begin
            Array.unsafe_set st.fired id true;
            let stats = st.stats in
            stats.Stats.instrs_executed <- stats.Stats.instrs_executed + 1;
            stats.Stats.tests_executed <- stats.Stats.tests_executed + 1;
            let l = Array.unsafe_get st.left id in
            let tok =
              if not (Token.as_predicate l) then Token.taint l zero_tok
              else
                let r = Array.unsafe_get st.right id in
                Token.taint l
                  (Token.taint r
                     (Token.of_int64 (if Token.as_predicate r then 1L else 0L)))
            in
            let tok =
              if predicated && Array.unsafe_get st.pred_exc id then Token.with_exc tok
              else tok
            in
            send st tok
          end
    | ( Opcode.Iop _ | Opcode.Iopi _ | Opcode.Tst _ | Opcode.Tsti _
      | Opcode.Fop _ | Opcode.Ftst _ | Opcode.Un _ | Opcode.Movi | Opcode.Geni
      | Opcode.Mov4 | Opcode.Null ) as op ->
        let compute : state -> Token.t =
          match i.Bi.arity with
          | 0 -> (
              match op with
              | Opcode.Movi | Opcode.Geni ->
                  let c = Token.of_int64 i.Bi.imm in
                  fun _ -> c
              | Opcode.Null -> fun _ -> Token.null_token
              | _ -> assert false)
          | 1 -> (
              match op with
              | Opcode.Un Opcode.Mov | Opcode.Mov4 ->
                  fun st -> Array.unsafe_get st.left id
              | _ ->
                  let f = Alu.jit1 op ~imm:i.Bi.imm in
                  fun st -> f (Array.unsafe_get st.left id))
          | _ ->
              let f = Alu.jit2 op in
              fun st -> f (Array.unsafe_get st.left id) (Array.unsafe_get st.right id)
        in
        match (i.Bi.cls, predicated) with
        | Bi.Splain, false ->
            fun st ->
              if not (Array.unsafe_get st.fired id) then begin
                Array.unsafe_set st.fired id true;
                let stats = st.stats in
                stats.Stats.instrs_executed <- stats.Stats.instrs_executed + 1;
                send st (compute st)
              end
        | Bi.Splain, true ->
            fun st ->
              if not (Array.unsafe_get st.fired id) then begin
                Array.unsafe_set st.fired id true;
                let stats = st.stats in
                stats.Stats.instrs_executed <- stats.Stats.instrs_executed + 1;
                let tok = compute st in
                send st (if Array.unsafe_get st.pred_exc id then Token.with_exc tok else tok)
              end
        | Bi.Smove, false ->
            fun st ->
              if not (Array.unsafe_get st.fired id) then begin
                Array.unsafe_set st.fired id true;
                let stats = st.stats in
                stats.Stats.instrs_executed <- stats.Stats.instrs_executed + 1;
                stats.Stats.moves_executed <- stats.Stats.moves_executed + 1;
                send st (compute st)
              end
        | Bi.Smove, true ->
            fun st ->
              if not (Array.unsafe_get st.fired id) then begin
                Array.unsafe_set st.fired id true;
                let stats = st.stats in
                stats.Stats.instrs_executed <- stats.Stats.instrs_executed + 1;
                stats.Stats.moves_executed <- stats.Stats.moves_executed + 1;
                let tok = compute st in
                send st (if Array.unsafe_get st.pred_exc id then Token.with_exc tok else tok)
              end
        | cls, _ ->
            let bump : Stats.t -> unit =
              match cls with
              | Bi.Smove ->
                  fun s -> s.Stats.moves_executed <- s.Stats.moves_executed + 1
              | Bi.Snull ->
                  fun s -> s.Stats.nulls_executed <- s.Stats.nulls_executed + 1
              | Bi.Stest ->
                  fun s -> s.Stats.tests_executed <- s.Stats.tests_executed + 1
              | Bi.Splain -> fun _ -> ()
            in
            if predicated then (
              fun st ->
                if not (Array.unsafe_get st.fired id) then begin
                  Array.unsafe_set st.fired id true;
                  let stats = st.stats in
                  stats.Stats.instrs_executed <-
                    stats.Stats.instrs_executed + 1;
                  bump stats;
                  let tok = compute st in
                  send st
                    (if Array.unsafe_get st.pred_exc id then Token.with_exc tok else tok)
                end)
            else
              fun st ->
                if not (Array.unsafe_get st.fired id) then begin
                  Array.unsafe_set st.fired id true;
                  let stats = st.stats in
                  stats.Stats.instrs_executed <-
                    stats.Stats.instrs_executed + 1;
                  bump stats;
                  send st (compute st)
                end
  in
  for id = 0 to n - 1 do
    fires.(id) <- compile_fire id
  done;
  let read_seeds =
    Array.mapi
      (fun rslot (r : Block.read) ->
        let sink = compose (Array.map sink_of img.Bi.rtargets.(rslot)) in
        let reg = r.Block.reg in
        fun st -> sink st (Token.of_int64 st.regs.(reg)))
      img.Bi.reads
  in
  let seeds = img.Bi.seeds in
  let enter st =
    let stats = st.stats in
    stats.Stats.blocks_executed <- stats.Stats.blocks_executed + 1;
    stats.Stats.instrs_fetched <- stats.Stats.instrs_fetched + n;
    for k = 0 to Array.length read_seeds - 1 do
      (Array.unsafe_get read_seeds k) st
    done;
    for k = 0 to Array.length seeds - 1 do
      (Array.unsafe_get checks (Array.unsafe_get seeds k)) st
    done
  in
  let pred_ids =
    let acc = ref [] in
    for id = n - 1 downto 0 do
      if instrs.(id).Bi.predicated then acc := id :: !acc
    done;
    Array.of_list !acc
  in
  { img; init_missing; pred_ids; enter }

let build (imgp : Bi.program) : t =
  let resolve name =
    match Bi.find_index imgp name with Some i -> i | None -> -1
  in
  { imgp; cblocks = Array.map (compile_block ~resolve) imgp.Bi.blocks }

(* execute the block [st] was prepared for and commit its outputs;
   mirrors [Functional.exec_block] including diagnostics *)
let exec_block (cb : cblock) st =
  match
    let img = cb.img in
    cb.enter st;
    let complete =
      st.writes_set = img.Bi.n_writes && st.stores_unres = 0 && st.branch_set
    in
    if not complete then begin
      let missing = Buffer.create 64 in
      for w = 0 to img.Bi.n_writes - 1 do
        if not st.wset.(w) then
          Buffer.add_string missing (Printf.sprintf " W%d" w)
      done;
      for k = 0 to img.Bi.n_stores - 1 do
        if st.stores.(k) = Unresolved then
          Buffer.add_string missing
            (Printf.sprintf " S%d" img.Bi.store_lsids.(k))
      done;
      if not st.branch_set then Buffer.add_string missing " branch";
      fail "block %s deadlocked; missing:%s" img.Bi.name
        (Buffer.contents missing)
    end;
    let stats = st.stats in
    let pred_ids = cb.pred_ids in
    for k = 0 to Array.length pred_ids - 1 do
      if not st.fired.(pred_ids.(k)) then
        stats.Stats.mispredicated_fetched <-
          stats.Stats.mispredicated_fetched + 1
    done;
    let fault = ref None in
    for k = 0 to img.Bi.n_stores - 1 do
      let slot = img.Bi.store_order.(k) in
      match st.stores.(slot) with
      | Stored { addr; value; width; exc } ->
          if exc then
            fault :=
              Some (Printf.sprintf "store lsid %d" img.Bi.store_lsids.(slot))
          else (
            match Mem.store st.mem ~width ~addr value with
            | Ok () -> ()
            | Error () ->
                fault := Some (Printf.sprintf "store fault at %Ld" addr))
      | Nulled -> ()
      | Unresolved -> assert false
    done;
    for w = 0 to img.Bi.n_writes - 1 do
      let t = st.writes.(w) in
      if t.Token.null then ()
      else if t.Token.exc then fault := Some (Printf.sprintf "write W%d" w)
      else st.regs.(img.Bi.write_regs.(w)) <- t.Token.payload
    done;
    if st.branch_exc then fault := Some "branch";
    stats.Stats.blocks_committed <- stats.Stats.blocks_committed + 1;
    Ok { exit_taken = st.branch_tgt; exit_idx = st.branch_idx; faulted = !fault }
  with
  | r -> r
  | exception Malformed m -> Error m

(* ---- content-addressed code cache ----

   Same discipline as [Block_image.of_program]: keyed by program
   digest, shared across domains under a mutex, bounded so fuzz
   campaigns cannot grow it without limit. Compiled closures capture
   only immutable data, so sharing across domains is safe. *)

let cache : (string, t) Hashtbl.t = Hashtbl.create 64
let cache_mu = Mutex.create ()
let cache_cap = 256

let compile program =
  let key = Program.digest program in
  Mutex.lock cache_mu;
  let code =
    match Hashtbl.find_opt cache key with
    | Some code -> code
    | None ->
        let code = build (Bi.of_program program) in
        if Hashtbl.length cache >= cache_cap then Hashtbl.reset cache;
        Hashtbl.replace cache key code;
        code
  in
  Mutex.unlock cache_mu;
  code

let run ?(fuel_blocks = 10_000_000) program ~regs ~mem =
  let stats = Stats.create () in
  let code = compile program in
  let st = make_state code ~regs ~mem ~stats in
  let rec go idx fuel =
    if fuel <= 0 then Error "malformed: fuel exhausted"
    else
      let cb = code.cblocks.(idx) in
      prepare cb st;
      match exec_block cb st with
      | Error m -> Error ("malformed: " ^ m)
      | Ok { faulted = Some f; _ } -> Error ("fault: " ^ f)
      | Ok { exit_taken = None; _ } -> Ok stats
      | Ok { exit_taken = Some next; exit_idx; _ } ->
          if exit_idx < 0 then
            Error (Printf.sprintf "malformed: no block %s" next)
          else go exit_idx (fuel - 1)
  in
  let entry = code.imgp.Bi.entry in
  if entry < 0 then
    Error (Printf.sprintf "malformed: no block %s" program.Program.entry)
  else go entry fuel_blocks
