module Block = Edge_isa.Block
module Instr = Edge_isa.Instr
module Opcode = Edge_isa.Opcode
module Target = Edge_isa.Target
module Token = Edge_isa.Token
module Mem = Edge_isa.Mem
module Bi = Block_image

type outcome = { exit_taken : string option; faulted : string option }

exception Malformed of string

type store_resolution =
  | Unresolved
  | Stored of { addr : int64; value : int64; width : Opcode.width; exc : bool }
  | Nulled

(* Execution state over a decoded block image. The arrays are capacity
   arrays: [run] reuses one state across every block of the chain
   (cleared up to the current image's counts before each block), while
   [run_block] sizes them exactly. *)
type state = {
  mutable img : Bi.t;
  left : Token.t option array;
  right : Token.t option array;
  pred_matched : bool array;  (* matching predicate arrived *)
  pred_exc : bool array;  (* the matching predicate carried an exception *)
  fired : bool array;
  writes : Token.t option array;
  stores : store_resolution array;  (* per declared store slot *)
  mutable branch : (string option * bool) option;  (* target, exc *)
  mutable pending_loads : int list;  (* instr ids deferred on LSID order *)
  (* pending token deliveries: a FIFO ring over two parallel arrays so
     the hot delivery loop never allocates tuples or queue cells *)
  mutable q_tgt : Target.t array;
  mutable q_tok : Token.t array;
  mutable q_head : int;
  mutable q_len : int;
}

let fail fmt = Format.kasprintf (fun s -> raise (Malformed s)) fmt

let make_state ~cap_n ~cap_w ~cap_s img =
  {
    img;
    left = Array.make (max 1 cap_n) None;
    right = Array.make (max 1 cap_n) None;
    pred_matched = Array.make (max 1 cap_n) false;
    pred_exc = Array.make (max 1 cap_n) false;
    fired = Array.make (max 1 cap_n) false;
    writes = Array.make (max 1 cap_w) None;
    stores = Array.make (max 1 cap_s) Unresolved;
    branch = None;
    pending_loads = [];
    q_tgt = Array.make 64 (Target.To_write 0);
    q_tok = Array.make 64 (Token.of_int64 0L);
    q_head = 0;
    q_len = 0;
  }

let q_push st tgt tok =
  let cap = Array.length st.q_tgt in
  if st.q_len = cap then begin
    let ntgt = Array.make (2 * cap) (Target.To_write 0) in
    let ntok = Array.make (2 * cap) (Token.of_int64 0L) in
    for i = 0 to st.q_len - 1 do
      let j = (st.q_head + i) land (cap - 1) in
      ntgt.(i) <- st.q_tgt.(j);
      ntok.(i) <- st.q_tok.(j)
    done;
    st.q_tgt <- ntgt;
    st.q_tok <- ntok;
    st.q_head <- 0
  end;
  let j = (st.q_head + st.q_len) land (Array.length st.q_tgt - 1) in
  st.q_tgt.(j) <- tgt;
  st.q_tok.(j) <- tok;
  st.q_len <- st.q_len + 1

(* point [st] at [img] and clear the live prefix *)
let prepare st img =
  st.img <- img;
  let n = img.Bi.n in
  Array.fill st.left 0 n None;
  Array.fill st.right 0 n None;
  Array.fill st.pred_matched 0 n false;
  Array.fill st.pred_exc 0 n false;
  Array.fill st.fired 0 n false;
  Array.fill st.writes 0 img.Bi.n_writes None;
  Array.fill st.stores 0 img.Bi.n_stores Unresolved;
  st.branch <- None;
  st.pending_loads <- [];
  st.q_head <- 0;
  st.q_len <- 0

let store_slot st lsid =
  let slot = Bi.store_slot_of st.img lsid in
  if slot < 0 then fail "store lsid %d not declared" lsid;
  slot

let resolve_store st lsid r =
  let slot = store_slot st lsid in
  (match st.stores.(slot) with
  | Unresolved -> ()
  | Stored _ | Nulled -> fail "store lsid %d resolved twice" lsid);
  st.stores.(slot) <- r

let lower_lsids_resolved st lsid =
  let img = st.img in
  let rec go k =
    k >= img.Bi.n_stores
    || (img.Bi.store_lsids.(k) >= lsid
        || match st.stores.(k) with Unresolved -> false | _ -> true)
       && go (k + 1)
  in
  go 0

(* Byte-accurate store-to-load forwarding: read the load's bytes from
   memory, then overlay every resolved store with a lower LSID, in LSID
   order. *)
let read_with_forwarding st ~mem ~width ~addr ~lsid =
  let nbytes = Mem.width_bytes width in
  let base_tok = Mem.load mem ~width ~addr in
  if base_tok.Token.exc then base_tok
  else begin
    let bytes = Bytes.create nbytes in
    for i = 0 to nbytes - 1 do
      Bytes.set bytes i
        (Char.chr
           (Int64.to_int
              (Int64.logand
                 (Int64.shift_right_logical base_tok.Token.payload (8 * i))
                 0xFFL)))
    done;
    let exc = ref false in
    let img = st.img in
    for k = 0 to img.Bi.n_stores - 1 do
      let slot = img.Bi.store_order.(k) in
      if img.Bi.store_lsids.(slot) < lsid then
        match st.stores.(slot) with
        | Stored { addr = sa; value; width = sw; exc = se } ->
            let sbytes = Mem.width_bytes sw in
            for i = 0 to sbytes - 1 do
              let byte_addr = Int64.add sa (Int64.of_int i) in
              let off = Int64.sub byte_addr addr in
              if off >= 0L && off < Int64.of_int nbytes then begin
                if se then exc := true;
                Bytes.set bytes (Int64.to_int off)
                  (Char.chr
                     (Int64.to_int
                        (Int64.logand
                           (Int64.shift_right_logical value (8 * i))
                           0xFFL)))
              end
            done
        | Unresolved | Nulled -> ()
    done;
    let v = ref 0L in
    for i = nbytes - 1 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code (Bytes.get bytes i)))
    done;
    (* sign extension for sub-word loads *)
    let v =
      match width with
      | Opcode.W1 ->
          if Int64.logand !v 0x80L <> 0L then Int64.logor !v (Int64.lognot 0xFFL)
          else !v
      | Opcode.W4 ->
          if Int64.logand !v 0x80000000L <> 0L then
            Int64.logor !v (Int64.lognot 0xFFFFFFFFL)
          else !v
      | Opcode.W8 -> !v
    in
    let tok = Token.of_int64 v in
    if !exc then Token.with_exc tok else tok
  end

let is_complete st =
  let img = st.img in
  let rec writes_done w =
    w >= img.Bi.n_writes || (Option.is_some st.writes.(w) && writes_done (w + 1))
  in
  let rec stores_done k =
    k >= img.Bi.n_stores
    || ((match st.stores.(k) with Unresolved -> false | _ -> true)
       && stores_done (k + 1))
  in
  writes_done 0 && stores_done 0 && Option.is_some st.branch

let ready st id =
  let i = st.img.Bi.instrs.(id) in
  if st.fired.(id) then false
  else
    let data_ok =
      match i.Bi.op with
      | Opcode.Sand -> (
          (* short-circuit: a false left operand suffices (Section 7) *)
          match st.left.(id) with
          | Some l -> (not (Token.as_predicate l)) || Option.is_some st.right.(id)
          | None -> false)
      | _ ->
          (i.Bi.arity < 1 || Option.is_some st.left.(id))
          && (i.Bi.arity < 2 || Option.is_some st.right.(id))
    in
    let pred_ok = (not i.Bi.predicated) || st.pred_matched.(id) in
    data_ok && pred_ok

let rec deliver st ~mem ~stats target tok =
  match target with
  | Target.To_write w -> (
      match st.writes.(w) with
      | Some _ -> fail "write slot %d received two tokens" w
      | None -> st.writes.(w) <- Some tok)
  | Target.To_instr { id; slot } -> (
      let i = st.img.Bi.instrs.(id) in
      match slot with
      | Target.Pred ->
          if not i.Bi.predicated then
            fail "I%d: predicate delivered to unpredicated instruction" id;
          if Instr.predicate_matches i.Bi.pred tok then begin
            if st.pred_matched.(id) then
              fail "I%d: two matching predicates" id;
            st.pred_matched.(id) <- true;
            st.pred_exc.(id) <- tok.Token.exc;
            try_fire st ~mem ~stats id
          end
          (* non-matching arrivals are ignored (Section 4.1) *)
      | Target.Left | Target.Right ->
          (* a null token arriving at a store resolves it immediately as a
             null store (Section 4.2) *)
          if i.Bi.is_store && tok.Token.null then begin
            if st.fired.(id) then fail "I%d: null for fired store" id;
            st.fired.(id) <- true;
            stats.Stats.nulls_executed <- stats.Stats.nulls_executed + 1;
            resolve_store st i.Bi.lsid Nulled;
            retry_loads st ~mem ~stats
          end
          else begin
            let arr =
              match slot with
              | Target.Left -> st.left
              | Target.Right -> st.right
              | Target.Pred -> assert false
            in
            (match arr.(id) with
            | Some _ -> fail "I%d: operand %a delivered twice" id Target.pp_slot slot
            | None -> arr.(id) <- Some tok);
            try_fire st ~mem ~stats id
          end)

and try_fire st ~mem ~stats id =
  if ready st id then fire st ~mem ~stats id

and fire st ~mem ~stats id =
  let i = st.img.Bi.instrs.(id) in
  let taint_pred tok =
    if st.pred_exc.(id) then Token.with_exc tok else tok
  in
  match i.Bi.op with
  | Opcode.Ld width ->
      (* defer when a lower-LSID declared store is still unresolved *)
      if not (lower_lsids_resolved st i.Bi.lsid) then begin
        if not (List.mem id st.pending_loads) then
          st.pending_loads <- id :: st.pending_loads
      end
      else begin
        st.fired.(id) <- true;
        stats.Stats.instrs_executed <- stats.Stats.instrs_executed + 1;
        let base =
          match st.left.(id) with Some t -> t | None -> assert false
        in
        let addr = Alu.effective_address ~base ~imm:i.Bi.imm in
        let tok =
          if base.Token.exc || base.Token.null then
            Token.taint base (Token.of_int64 0L)
          else read_with_forwarding st ~mem ~width ~addr ~lsid:i.Bi.lsid
        in
        let tok = taint_pred (Token.taint base tok) in
        send_all st ~mem ~stats i tok
      end
  | Opcode.St width ->
      st.fired.(id) <- true;
      stats.Stats.instrs_executed <- stats.Stats.instrs_executed + 1;
      let base = match st.left.(id) with Some t -> t | None -> assert false in
      let v = match st.right.(id) with Some t -> t | None -> assert false in
      if v.Token.null || base.Token.null then begin
        resolve_store st i.Bi.lsid Nulled;
        retry_loads st ~mem ~stats
      end
      else begin
        let addr = Alu.effective_address ~base ~imm:i.Bi.imm in
        let exc = base.Token.exc || v.Token.exc || st.pred_exc.(id) in
        resolve_store st i.Bi.lsid
          (Stored { addr; value = v.Token.payload; width; exc });
        retry_loads st ~mem ~stats
      end
  | Opcode.Bro ->
      st.fired.(id) <- true;
      stats.Stats.instrs_executed <- stats.Stats.instrs_executed + 1;
      (match st.branch with
      | Some _ -> fail "two branches fired"
      | None ->
          let tgt = st.img.Bi.exits.(i.Bi.exit_idx) in
          let tgt = if String.equal tgt Block.halt_exit then None else Some tgt in
          st.branch <- Some (tgt, st.pred_exc.(id)))
  | Opcode.Halt ->
      st.fired.(id) <- true;
      stats.Stats.instrs_executed <- stats.Stats.instrs_executed + 1;
      (match st.branch with
      | Some _ -> fail "two branches fired"
      | None -> st.branch <- Some (None, st.pred_exc.(id)))
  | Opcode.Sand ->
      st.fired.(id) <- true;
      stats.Stats.instrs_executed <- stats.Stats.instrs_executed + 1;
      stats.Stats.tests_executed <- stats.Stats.tests_executed + 1;
      let l = match st.left.(id) with Some t -> t | None -> assert false in
      let tok =
        if not (Token.as_predicate l) then Token.taint l (Token.of_int64 0L)
        else
          let r = match st.right.(id) with Some t -> t | None -> assert false in
          Token.taint l
            (Token.taint r
               (Token.of_int64 (if Token.as_predicate r then 1L else 0L)))
      in
      send_all st ~mem ~stats i (taint_pred tok)
  | Opcode.Iop _ | Opcode.Iopi _ | Opcode.Tst _ | Opcode.Tsti _ | Opcode.Fop _
  | Opcode.Ftst _ | Opcode.Un _ | Opcode.Movi | Opcode.Geni | Opcode.Mov4
  | Opcode.Null ->
      st.fired.(id) <- true;
      stats.Stats.instrs_executed <- stats.Stats.instrs_executed + 1;
      (match i.Bi.cls with
      | Bi.Smove -> stats.Stats.moves_executed <- stats.Stats.moves_executed + 1
      | Bi.Snull -> stats.Stats.nulls_executed <- stats.Stats.nulls_executed + 1
      | Bi.Stest -> stats.Stats.tests_executed <- stats.Stats.tests_executed + 1
      | Bi.Splain -> ());
      let tok =
        Alu.exec i.Bi.op ~imm:i.Bi.imm ~left:st.left.(id) ~right:st.right.(id)
      in
      send_all st ~mem ~stats i (taint_pred tok)

and send_all st ~mem ~stats (i : Bi.inst) tok =
  let tgts = i.Bi.targets in
  for k = 0 to Array.length tgts - 1 do
    q_push st tgts.(k) tok
  done;
  drain st ~mem ~stats

and retry_loads st ~mem ~stats =
  let loads = st.pending_loads in
  st.pending_loads <- [];
  List.iter
    (fun id -> if not st.fired.(id) then fire st ~mem ~stats id)
    loads

and drain st ~mem ~stats =
  while st.q_len > 0 do
    let j = st.q_head in
    st.q_head <- (j + 1) land (Array.length st.q_tgt - 1);
    st.q_len <- st.q_len - 1;
    deliver st ~mem ~stats st.q_tgt.(j) st.q_tok.(j)
  done

(* execute the block [st] was prepared for and commit its outputs *)
let exec_block st ~regs ~mem ~stats =
  match
    let img = st.img in
    stats.Stats.blocks_executed <- stats.Stats.blocks_executed + 1;
    stats.Stats.instrs_fetched <- stats.Stats.instrs_fetched + img.Bi.n;
    (* seed register reads *)
    Array.iteri
      (fun rslot (r : Block.read) ->
        let tok = Token.of_int64 regs.(r.Block.reg) in
        Array.iter (fun tgt -> q_push st tgt tok) img.Bi.rtargets.(rslot))
      img.Bi.reads;
    (* seed 0-operand unpredicated instructions *)
    Array.iter (fun id -> try_fire st ~mem ~stats id) img.Bi.seeds;
    drain st ~mem ~stats;
    if not (is_complete st) then begin
      let missing = Buffer.create 64 in
      for w = 0 to img.Bi.n_writes - 1 do
        if st.writes.(w) = None then
          Buffer.add_string missing (Printf.sprintf " W%d" w)
      done;
      for k = 0 to img.Bi.n_stores - 1 do
        if st.stores.(k) = Unresolved then
          Buffer.add_string missing
            (Printf.sprintf " S%d" img.Bi.store_lsids.(k))
      done;
      if st.branch = None then Buffer.add_string missing " branch";
      fail "block %s deadlocked; missing:%s" img.Bi.name
        (Buffer.contents missing)
    end;
    (* count mispredicated (fetched but never fired) instructions *)
    Array.iteri
      (fun id (i : Bi.inst) ->
        if i.Bi.predicated && not st.fired.(id) then
          stats.Stats.mispredicated_fetched <-
            stats.Stats.mispredicated_fetched + 1)
      img.Bi.instrs;
    (* commit: stores in LSID order, then register writes *)
    let fault = ref None in
    for k = 0 to img.Bi.n_stores - 1 do
      let slot = img.Bi.store_order.(k) in
      match st.stores.(slot) with
      | Stored { addr; value; width; exc } ->
          if exc then
            fault := Some (Printf.sprintf "store lsid %d" img.Bi.store_lsids.(slot))
          else (
            match Mem.store mem ~width ~addr value with
            | Ok () -> ()
            | Error () ->
                fault := Some (Printf.sprintf "store fault at %Ld" addr))
      | Nulled -> ()
      | Unresolved -> assert false
    done;
    for w = 0 to img.Bi.n_writes - 1 do
      match st.writes.(w) with
      | Some t ->
          if t.Token.null then ()
          else if t.Token.exc then
            fault := Some (Printf.sprintf "write W%d" w)
          else regs.(img.Bi.write_regs.(w)) <- t.Token.payload
      | None -> assert false
    done;
    let exit_taken, branch_exc =
      match st.branch with Some (t, e) -> (t, e) | None -> assert false
    in
    if branch_exc then fault := Some "branch";
    stats.Stats.blocks_committed <- stats.Stats.blocks_committed + 1;
    Ok { exit_taken; faulted = !fault }
  with
  | r -> r
  | exception Malformed m -> Error m

let run_block block ~regs ~mem ~stats =
  let img = Bi.of_block block in
  let st =
    make_state ~cap_n:img.Bi.n ~cap_w:img.Bi.n_writes ~cap_s:img.Bi.n_stores img
  in
  prepare st img;
  exec_block st ~regs ~mem ~stats

(* a capacity-sized state for the whole program; [prepare] repoints it
   per block *)
let state_for_program (imgp : Bi.program) =
  make_state ~cap_n:imgp.Bi.max_n ~cap_w:imgp.Bi.max_writes
    ~cap_s:imgp.Bi.max_stores
    (* a placeholder image *)
    (if Array.length imgp.Bi.blocks > 0 then imgp.Bi.blocks.(0)
     else
       Bi.of_block
         {
           Block.name = "@none";
           instrs = [||];
           reads = [||];
           writes = [||];
           store_lsids = [];
           exits = [||];
         })

let run_interp ?(fuel_blocks = 10_000_000) program ~regs ~mem =
  let stats = Stats.create () in
  let imgp = Bi.of_program program in
  let st = state_for_program imgp in
  let rec go name fuel =
    if fuel <= 0 then Error "malformed: fuel exhausted"
    else
      match Bi.find_index imgp name with
      | None -> Error (Printf.sprintf "malformed: no block %s" name)
      | Some idx -> (
          prepare st imgp.Bi.blocks.(idx);
          match exec_block st ~regs ~mem ~stats with
          | Error m -> Error ("malformed: " ^ m)
          | Ok { faulted = Some f; _ } -> Error ("fault: " ^ f)
          | Ok { exit_taken = None; _ } -> Ok stats
          | Ok { exit_taken = Some next; _ } -> go next (fuel - 1))
  in
  go program.Edge_isa.Program.entry fuel_blocks

(* ---- JIT dispatch ----

   [Block_jit] compiles block images to threaded-code closures with
   identical architectural semantics; this interpreter remains the
   reference path, selected by [~jit:false], [set_jit false] (the
   [--no-jit] flag) or [DFP_NO_JIT=1]. *)

let jit_default =
  ref
    (match Sys.getenv_opt "DFP_NO_JIT" with
    | Some ("1" | "true" | "yes") -> false
    | Some _ | None -> true)

let set_jit b = jit_default := b
let jit_enabled () = !jit_default

let run ?fuel_blocks ?jit program ~regs ~mem =
  let use_jit = match jit with Some j -> j | None -> !jit_default in
  if use_jit then Block_jit.run ?fuel_blocks program ~regs ~mem
  else run_interp ?fuel_blocks program ~regs ~mem

(* ---- the reusable per-block engine ----

   [Inorder_sim] runs blocks through exactly this interpreter for
   architectural state (so it can never diverge from the functional
   simulator) and layers a timing model on top, reading back which
   instructions fired and the operands its cost model needs. *)

module Engine = struct
  type nonrec state = state

  let make = state_for_program
  let prepare = prepare
  let exec_block = exec_block
  let fired st id = st.fired.(id)
  let left_operand st id = st.left.(id)
  let right_operand st id = st.right.(id)
end
