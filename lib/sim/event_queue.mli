(** Bucketed calendar queue for the cycle simulator's event wheel.

    Replaces the allocating [IntMap]-of-closures queue with a fixed
    ring of per-cycle buckets plus an overflow list for events beyond
    the ring horizon. Preserves the map's semantics exactly: events
    scheduled for the same cycle pop in insertion order (FIFO), even
    when bucketed and far-future overflowed events interleave. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> cycle:int -> 'a -> unit
(** Schedule [payload] for [cycle]. O(1). *)

val pop_due : 'a t -> cycle:int -> 'a list
(** All events scheduled for exactly [cycle], in insertion order, and
    removes them. The simulator visits cycles in increasing order, so
    draining at each visited cycle never strands older events. *)

val drain : 'a t -> cycle:int -> ('a -> unit) -> unit
(** [drain t ~cycle f] applies [f] to every event scheduled for exactly
    [cycle], in insertion order, removing them first — same snapshot
    semantics as {!pop_due} (events [f] schedules for a later cycle are
    not visited) without materialising the due list on the common
    bucket-only path. *)

val next_due : 'a t -> int option
(** Earliest cycle holding a pending event, or [None] when empty.
    Amortized O(distance to the next event). *)

val is_empty : 'a t -> bool
