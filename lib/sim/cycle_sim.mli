(** Cycle-level simulator of the tiled EDGE microarchitecture (the
    tsim-proc substitute used for every number in Section 6).

    Modeled mechanisms: next-block prediction (3 cycles) and 8-cycle
    block fetch through a 64 KB L1 I-cache; up to 8 blocks in flight;
    per-tile reservation stations with predicate-aware wakeup
    (Section 4.1); single-issue-per-tile execution with opcode latencies;
    a one-cycle-per-hop operand network using the compiler's placement;
    a 32 KB 2-cycle L1 D-cache backed by an L2 and memory; an LSQ with
    intra- and inter-block LSID ordering, store-to-load forwarding,
    aggressive load speculation with a dependence predictor and violation
    flushes; null-token output resolution (Section 4.2); block completion
    by output counting with early mispredication termination
    (Section 4.3); and exception-bit commit semantics (Section 4.4). *)

type placement_fn = string -> int array
(** Tile placement per block (from [Dfp.Schedule]); defaults to a
    round-robin mapping when the block is unknown. *)

val revision : string
(** Bumped whenever simulated semantics or [Stats] accounting change;
    the persistent result cache folds it into its keys so stale
    entries invalidate themselves. *)

val run :
  ?machine:Machine.t ->
  ?placement:placement_fn ->
  ?obs:Edge_obs.Obs.t ->
  ?arena:bool ->
  Edge_isa.Program.t ->
  regs:int64 array ->
  mem:Edge_isa.Mem.t ->
  (Stats.t, string) result
(** Runs until halt. Errors: ["fault: ..."] for block-boundary
    exceptions, ["malformed: ..."] for ill-formed blocks or deadlock,
    ["watchdog: ..."] if [max_cycles] is exceeded. On success,
    [regs]/[mem] hold the architectural state and the stats carry the
    cycle count.

    [obs] (default {!Edge_obs.Obs.null}) attaches a structured trace
    sink and/or metrics registry; with the null bundle every
    instrumentation site reduces to a dead branch, so the uninstrumented
    fast path is unchanged.

    [arena] (default [true]) recycles per-frame operand/state arrays
    across block instances instead of allocating them per dispatch;
    results are identical either way (the [DFP_ARENA_DEBUG] environment
    variable additionally asserts each recycled frame prefix is
    indistinguishable from fresh arrays). Pass [false] to force fresh
    allocation, e.g. for differential testing of the arena itself. *)
