(* Routes a run to the simulator implementing the machine's backend. *)

let revision (m : Machine.t) =
  match m.Machine.backend with
  | Machine.Trips_grid -> Cycle_sim.revision
  | Machine.Inorder_edge -> Inorder_sim.revision

let run ?(machine = Machine.default) ?placement ?obs ?arena program ~regs ~mem
    =
  match machine.Machine.backend with
  | Machine.Trips_grid ->
      Cycle_sim.run ~machine ?placement ?obs ?arena program ~regs ~mem
  | Machine.Inorder_edge ->
      (* centralized core: placement and the frame arena are grid
         concerns *)
      Inorder_sim.run ~machine ?obs program ~regs ~mem
