(** Next-block prediction.

    TRIPS predicts the next block (one prediction per block rather than
    per branch — a key benefit the paper attributes to predication:
    fewer, more predictable branches). We model an exit predictor: a
    two-level scheme hashing the block address with a global history of
    recent exit indices to predict which exit the block will take, backed
    by a BTB mapping (block, exit) to the target name. Prediction costs
    the 3-cycle latency of Section 6 (charged by the block engine). *)

type t

val create : ?history_bits:int -> ?table_bits:int -> unit -> t

val predict : t -> block:string -> string option
(** Predicted next-block name; [None] when nothing is known yet (the
    engine then stalls fetch until the branch resolves). *)

val update : t -> block:string -> exit_idx:int -> target:string -> unit
(** Train with the architecturally taken exit. Also advances the global
    history. *)

val block_hash : string -> int
(** The hash [predict]/[update] derive from the block name; precompute
    it once per block and use the [_hashed] variants on hot paths. *)

val predict_hashed : t -> block_hash:int -> string option
val update_hashed : t -> block_hash:int -> exit_idx:int -> target:string -> unit
(** Exactly [predict]/[update] with the name hash supplied by the
    caller (see {!block_hash}). *)

val mispredicts : t -> int
val predictions : t -> int
val record_outcome : t -> correct:bool -> unit
