(** Threaded-code block JIT for the functional simulator.

    Compiles each decoded {!Block_image} once into pre-resolved closure
    chains: per-target sink closures (operand slot, predicate polarity
    and store-LSID slot resolved at compile time), per-instruction fire
    closures (opcode dispatch specialized via {!Alu.jit1}/{!Alu.jit2}),
    countdown readiness, and direct-recursion token delivery. Compiled
    code is cached per [Program.digest] and shared across domains;
    run-time state is threaded through the closures.

    Architecturally identical to the {!Functional} interpreter,
    including [Stats] accounting and malformed-block diagnostics; the
    interpreter remains the reference path ([--no-jit] /
    [DFP_NO_JIT=1]). *)

val revision : string
(** Identifies the compiled representation and its semantics; salted
    into disk-cache and memoization keys so stale cached results cannot
    mask behavioural drift across JIT changes. *)

val run :
  ?fuel_blocks:int ->
  Edge_isa.Program.t ->
  regs:int64 array ->
  mem:Edge_isa.Mem.t ->
  (Stats.t, string) result
(** Same contract as {!Functional.run} on the interpreter path. *)
