module Block = Edge_isa.Block
module Instr = Edge_isa.Instr
module Opcode = Edge_isa.Opcode
module Target = Edge_isa.Target
module Token = Edge_isa.Token
module Mem = Edge_isa.Mem
module Program = Edge_isa.Program
module Bi = Block_image
module Obs = Edge_obs.Obs
module Ev = Edge_obs.Event
module Mx = Edge_obs.Metrics

type placement_fn = string -> int array

(* bump when simulated semantics or [Stats] accounting change: the
   persistent result cache keys on it *)
let revision = "cycle-sim-5"

exception Malformed of string
exception Fault of string

let failm fmt = Format.kasprintf (fun s -> raise (Malformed s)) fmt

type stored = {
  s_addr : int64;
  s_value : int64;
  s_width : Opcode.width;
  s_exc : bool;
}

type store_res = Unresolved | Stored of stored | Nulled

let is_unresolved = function Unresolved -> true | Stored _ | Nulled -> false

(* per-frame observability state, allocated only when an [Obs] sink or
   metrics registry is attached — the null-obs fast path pays one [None]
   field per frame *)
type probe = {
  pred_arrivals : int array;
      (* predicate tokens delivered per instruction (matched or not):
         the paper's predicate-OR arrival counts; capacity array, live
         prefix is the block's instruction count *)
  mutable null_tokens : int;  (* null tokens delivered to this frame *)
}

(* per-block, per-run tables the dispatch/issue path would otherwise
   recompute on every fetch: the placement resolved once, operand
   network hop counts per target, and the I-cache footprint *)
type binfo = {
  img : Bi.t;
  placement : int array;
  res_hops : int array array;  (* per instr, per result target *)
  rd_hops : int array array;  (* per read slot, per read target *)
  mem_hops : int array;  (* per instr: hops to the memory interface *)
  base_addr : int64;  (* code address of the block *)
  n_lines : int;  (* I-cache lines fetched per dispatch *)
}

(* All frame arrays are capacity arrays when the arena is on: sized for
   the largest block in the program and recycled across block
   instances, with only the prefix covering the current block live.
   Every iteration over them is bounded by the image's counts. *)
type frame = {
  fid : int;
  gen : int;
  seq : int;
  bi : binfo;
  left : Token.t option array;
  right : Token.t option array;
  pred_matched : bool array;
  pred_exc : bool array;
  fired : bool array;
  queued : bool array;  (* sitting in a ready queue *)
  stores : store_res array;  (* per declared store slot *)
  writes : Token.t option array;
  write_subs : (int * int * int) list array;
      (* per write slot: (fid, gen, read-slot-resume-key) of younger
         readers waiting; the key is the reader frame's read slot *)
  mutable branch : (string option * bool * int) option;
      (* target, exception, exit_idx *)
  mutable predicted_next : string option;
  mutable prediction_checked : bool;
  mutable outputs_left : int;
  mutable pending_events : int;
  mutable deferred_loads : int list;
  mutable loads_done : (int * int64 * int) list;  (* lsid, addr, bytes *)
  mutable unres : int;  (* unresolved store slots in this frame *)
  mutable nstored : int;  (* slots resolved as [Stored] *)
  fstats : Stats.t;
  mutable complete : bool;
  dispatched_at : int;
  probe : probe option;
}

(* the recyclable arrays of one frame slot *)
type bufs = {
  b_left : Token.t option array;
  b_right : Token.t option array;
  b_pred_matched : bool array;
  b_pred_exc : bool array;
  b_fired : bool array;
  b_queued : bool array;
  b_stores : store_res array;
  b_writes : Token.t option array;
  b_write_subs : (int * int * int) list array;
  b_probe : int array;
}

type fetch_state =
  | Fidle  (** nothing to fetch (halt predicted/resolved) *)
  | Fwait of int  (** stalled on unresolved branch of frame seq *)
  | Fbusy of { idx : int; done_at : int; mutable held : bool }

(* per-tile ready queue: a FIFO ring of packed (gen, fid, id) ints —
   id in 7 bits (≤ 128 instructions), fid in 20 bits, gen above — so
   steady-state wakeups allocate nothing *)
type ready_q = { mutable rbuf : int array; mutable rhead : int; mutable rlen : int }

let pack_ready ~fid ~gen ~id = (gen lsl 27) lor (fid lsl 7) lor id
let ready_id x = x land 0x7f
let ready_fid x = (x lsr 7) land 0xfffff
let ready_gen x = x lsr 27

let rq_create () = { rbuf = Array.make 64 0; rhead = 0; rlen = 0 }

let rq_push q v =
  let cap = Array.length q.rbuf in
  if q.rlen = cap then begin
    let nbuf = Array.make (2 * cap) 0 in
    for i = 0 to q.rlen - 1 do
      nbuf.(i) <- q.rbuf.((q.rhead + i) land (cap - 1))
    done;
    q.rbuf <- nbuf;
    q.rhead <- 0
  end;
  q.rbuf.((q.rhead + q.rlen) land (Array.length q.rbuf - 1)) <- v;
  q.rlen <- q.rlen + 1

let rq_pop q =
  let v = q.rbuf.(q.rhead) in
  q.rhead <- (q.rhead + 1) land (Array.length q.rbuf - 1);
  q.rlen <- q.rlen - 1;
  v

(* A typed event: the wheel's unit of work. Replaces the per-event
   closure (code pointer + captured environment) with a flat immutable
   record built once at the schedule site — initialization is
   write-barrier-free, and execution dispatches on a small integer
   instead of an indirect call. Kinds: 0 = deliver one token to a
   target, 1 = a fired instruction's result reaches its sender (fans
   out into kind-0 events per target), 2 = a store reaches the LSQ,
   3 = a branch resolves. *)
type ev = {
  ek : int;
  efid : int;
  egen : int;
  eid : int;  (* instr id (kinds 1-2) or exit index (kind 3) *)
  etok : Token.t;  (* kinds 0-1: payload; kind 2: base address *)
  etok2 : Token.t;  (* kind 2: store value *)
  etgt : Target.t;  (* kind 0 *)
  eexc : bool;  (* kind 3 *)
  ebtgt : string option;  (* kind 3 *)
}

let ev_tok0 = Token.of_int64 0L
let ev_tgt0 = Target.To_write 0

type sim = {
  img : Bi.program;
  machine : Machine.t;
  placement : placement_fn;
  regs : int64 array;
  mem : Mem.t;
  stats : Stats.t;
  l1d : Cache.t;
  l1i : Cache.t;
  l2 : Cache.t;
  predictor : Predictor.t;
  binfos : binfo option array;  (* lazily built per block index *)
  dep_stride : int;  (* row width of the dependence predictor tables *)
  dep_same : int array;
      (* per (block index, load lsid): max conflicting same-frame store
         lsid, -1 for none — a store-set-style dependence predictor: a
         load waits only for the stores it was caught violating
         against *)
  dep_cross : bool array;  (* conflicts with older frames? *)
  arena : bufs array;  (* per frame slot; [||] when the arena is off *)
  arena_on : bool;
  arena_debug : bool;  (* cross-check cleared prefixes vs fresh arrays *)
  frames : frame option array;
  mutable live_cache : frame list;  (* live frames sorted by seq *)
  mutable live_dirty : bool;  (* [frames] changed since [live_cache] was built *)
  mutable next_seq : int;
  mutable next_gen : int;
  mutable fetch : fetch_state;
  mutable fetch_memo_name : string;  (* last start_fetch target ... *)
  mutable fetch_memo_idx : int;  (* ... and its block index *)
  events : ev Event_queue.t;
  mutable cycle : int;
  mutable unres_total : int;  (* unresolved stores across live frames *)
  mutable stored_total : int;  (* [Stored] resolutions across live frames *)
  mutable deferred_total : int;  (* deferred loads across live frames *)
  mutable loads_total : int;  (* [loads_done] entries across live frames *)
  ready : ready_q array;  (* per tile: packed (gen, fid, id) *)
  mutable ready_count : int;  (* total entries across [ready] queues *)
  mutable halted : bool;
  mutable fault : string option;
  obs : Obs.t;
  otrace : bool;  (* a trace sink is attached *)
  ofull : bool;  (* instruction/token/cache-level events wanted *)
  oactive : bool;  (* sink or metrics attached: per-frame probes on *)
  ometrics : Mx.t option;
}

(* ---------- observability helpers ----------

   Every call site is guarded on [sim.otrace] / [sim.oactive] so the
   null-obs configuration never constructs an event or a string. *)

let emit sim e = Obs.emit sim.obs e

let mincr ?by sim name =
  match sim.ometrics with Some m -> Mx.incr ?by m name | None -> ()

let mobserve sim name v =
  match sim.ometrics with Some m -> Mx.observe m name v | None -> ()

(* in-flight work a frame abandons when squashed or early-terminated:
   results still on the operand network plus ready-queue entries *)
let frame_orphans f =
  let queued = ref 0 in
  for i = 0 to f.bi.img.Bi.n - 1 do
    if f.queued.(i) && not f.fired.(i) then incr queued
  done;
  f.pending_events + !queued

let schedule sim dt ev =
  Event_queue.add sim.events ~cycle:(sim.cycle + max 1 dt) ev


let frame_alive sim fid gen =
  match sim.frames.(fid) with
  | Some f when f.gen = gen -> Some f
  | Some _ | None -> None

(* the live-frame list is rebuilt lazily: dispatch, flush and commit
   (the only writers of [sim.frames]) mark it dirty, and the many
   per-cycle readers share one cached sorted list *)
let invalidate_live sim = sim.live_dirty <- true

let live_frames sim =
  if sim.live_dirty then begin
    (* selection-build the seq-sorted list back to front: only the
       final conses are allocated, no intermediate lists or sort *)
    let acc = ref [] in
    let bound = ref max_int in
    let again = ref true in
    while !again do
      let best = ref (-1) and best_seq = ref min_int in
      Array.iteri
        (fun i fo ->
          match fo with
          | Some o when o.seq < !bound && o.seq > !best_seq ->
              best := i;
              best_seq := o.seq
          | Some _ | None -> ())
        sim.frames;
      if !best < 0 then again := false
      else begin
        (match sim.frames.(!best) with
        | Some o -> acc := o :: !acc
        | None -> assert false);
        bound := !best_seq
      end
    done;
    sim.live_cache <- !acc;
    sim.live_dirty <- false
  end;
  sim.live_cache

let no_live_frames sim = Array.for_all Option.is_none sim.frames

let oldest_frame sim =
  match live_frames sim with [] -> None | f :: _ -> Some f

(* ---------- per-block run tables ---------- *)

let default_placement_n ~num_tiles n = Array.init n (fun i -> i mod num_tiles)

let make_binfo sim idx =
  let machine = sim.machine in
  let num_tiles = Machine.num_tiles machine in
  let img = sim.img.Bi.blocks.(idx) in
  let n = img.Bi.n in
  let placement =
    let p = sim.placement img.Bi.name in
    (* a placement for another geometry (wrong length or out-of-range
       tile) falls back to round-robin over this machine's tiles *)
    if Array.length p = n && Array.for_all (fun t -> t >= 0 && t < num_tiles) p
    then p
    else default_placement_n ~num_tiles n
  in
  let res_hops =
    Array.mapi
      (fun id (i : Bi.inst) ->
        Array.map
          (function
            | Target.To_instr { id = d; _ } ->
                Machine.hops machine placement.(id) placement.(d)
            | Target.To_write _ -> Machine.reg_access_hops machine placement.(id))
          i.Bi.targets)
      img.Bi.instrs
  in
  let rd_hops =
    Array.map
      (fun tgts ->
        Array.map
          (function
            | Target.To_instr { id; _ } ->
                Machine.reg_access_hops machine placement.(id)
            | Target.To_write _ -> 1)
          tgts)
      img.Bi.rtargets
  in
  let mem_hops =
    Array.init n (fun id -> Machine.mem_access_hops machine placement.(id))
  in
  let lb = sim.machine.Machine.line_bytes in
  {
    img;
    placement;
    res_hops;
    rd_hops;
    mem_hops;
    base_addr = Int64.of_int (img.Bi.index * 1024);
    n_lines = max 1 ((img.Bi.size_words * 4) + lb - 1) / lb;
  }

let binfo sim idx =
  match sim.binfos.(idx) with
  | Some b -> b
  | None ->
      let b = make_binfo sim idx in
      sim.binfos.(idx) <- Some b;
      b

(* ---------- memory timing ---------- *)

let dcache_latency sim ~addr ~write =
  sim.stats.Stats.dcache_accesses <- sim.stats.Stats.dcache_accesses + 1;
  if sim.oactive then mincr sim "sim.dcache_accesses";
  if Cache.access sim.l1d ~addr ~write then begin
    if sim.otrace && sim.ofull then
      emit sim (Ev.Cache { cycle = sim.cycle; cache = "l1d"; write; hit = true });
    Cache.hit_latency sim.l1d
  end
  else begin
    sim.stats.Stats.dcache_misses <- sim.stats.Stats.dcache_misses + 1;
    if sim.oactive then mincr sim "sim.dcache_misses";
    if sim.otrace && sim.ofull then
      emit sim (Ev.Cache { cycle = sim.cycle; cache = "l1d"; write; hit = false });
    let l2_hit = Cache.access sim.l2 ~addr ~write in
    if sim.otrace && sim.ofull then
      emit sim (Ev.Cache { cycle = sim.cycle; cache = "l2"; write; hit = l2_hit });
    if l2_hit then Cache.hit_latency sim.l1d + sim.machine.Machine.l2_latency
    else
      Cache.hit_latency sim.l1d + sim.machine.Machine.l2_latency
      + sim.machine.Machine.mem_latency
  end

let icache_penalty sim bi =
  let pen = ref 0 in
  for i = 0 to bi.n_lines - 1 do
    sim.stats.Stats.icache_accesses <- sim.stats.Stats.icache_accesses + 1;
    if sim.oactive then mincr sim "sim.icache_accesses";
    let addr =
      Int64.add bi.base_addr (Int64.of_int (i * sim.machine.Machine.line_bytes))
    in
    let l1i_hit = Cache.access sim.l1i ~addr ~write:false in
    if sim.otrace && sim.ofull then
      emit sim
        (Ev.Cache { cycle = sim.cycle; cache = "l1i"; write = false; hit = l1i_hit });
    if not l1i_hit then begin
      sim.stats.Stats.icache_misses <- sim.stats.Stats.icache_misses + 1;
      if sim.oactive then mincr sim "sim.icache_misses";
      pen :=
        !pen
        + (if Cache.access sim.l2 ~addr ~write:false then
             sim.machine.Machine.l2_latency
           else sim.machine.Machine.l2_latency + sim.machine.Machine.mem_latency)
    end
  done;
  !pen

(* all resolved stores strictly before (seq, lsid) in LSQ order, oldest
   first, across in-flight frames; allocates only for matching entries
   (usually none) *)
let stores_before sim ~seq ~lsid =
  if sim.stored_total = 0 then []
  else
  let acc = ref [] in
  List.iter
    (fun f ->
      if f.seq <= seq then
        let img = f.bi.img in
        for k = 0 to img.Bi.n_stores - 1 do
          let l = img.Bi.store_lsids.(k) in
          if f.seq < seq || l < lsid then
            match f.stores.(k) with
            | Stored s -> acc := (f.seq, l, s) :: !acc
            | Nulled | Unresolved -> ()
        done)
    (live_frames sim);
  (* (seq, lsid) keys are unique, so ordering by them alone matches the
     old polymorphic sort of the full triple *)
  List.sort
    (fun (s1, l1, _) (s2, l2, _) ->
      if s1 <> s2 then Int.compare s1 s2 else Int.compare l1 l2)
    !acc

let unresolved_before sim ~seq ~lsid =
  sim.unres_total > 0
  (* existence is order-independent: scan the frame table directly *)
  && Array.exists
    (function
      | None -> false
      | Some f ->
          let img = f.bi.img in
          let rec scan k =
            k < img.Bi.n_stores
            && (((f.seq < seq || (f.seq = seq && img.Bi.store_lsids.(k) < lsid))
                 && is_unresolved f.stores.(k))
               || scan (k + 1))
          in
          scan 0)
    sim.frames

let any_unresolved_store f = f.unres > 0

let read_with_forwarding sim ~width ~addr ~seq ~lsid =
  let nbytes = Mem.width_bytes width in
  let base_tok = Mem.load sim.mem ~width ~addr in
  if base_tok.Token.exc then base_tok
  else
    match stores_before sim ~seq ~lsid with
    | [] ->
        (* no in-flight store to forward from: the byte-merge below
           would reconstruct exactly [Mem.load]'s value (same bytes,
           same sign extension), so skip it *)
        base_tok
    | stores ->
    let bytes = Bytes.create nbytes in
    for i = 0 to nbytes - 1 do
      Bytes.set bytes i
        (Char.chr
           (Int64.to_int
              (Int64.logand
                 (Int64.shift_right_logical base_tok.Token.payload (8 * i))
                 0xFFL)))
    done;
    let exc = ref false in
    List.iter
      (fun (_, _, s) ->
        match s with
        | { s_addr = sa; s_value = value; s_width = sw; s_exc = se } ->
            let sbytes = Mem.width_bytes sw in
            for i = 0 to sbytes - 1 do
              let off = Int64.sub (Int64.add sa (Int64.of_int i)) addr in
              if off >= 0L && off < Int64.of_int nbytes then begin
                if se then exc := true;
                Bytes.set bytes (Int64.to_int off)
                  (Char.chr
                     (Int64.to_int
                        (Int64.logand (Int64.shift_right_logical value (8 * i)) 0xFFL)))
              end
            done)
      stores;
    let v = ref 0L in
    for i = nbytes - 1 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8)
             (Int64.of_int (Char.code (Bytes.get bytes i)))
    done;
    let v =
      match width with
      | Opcode.W1 ->
          if Int64.logand !v 0x80L <> 0L then Int64.logor !v (Int64.lognot 0xFFL)
          else !v
      | Opcode.W4 ->
          if Int64.logand !v 0x80000000L <> 0L then
            Int64.logor !v (Int64.lognot 0xFFFFFFFFL)
          else !v
      | Opcode.W8 -> !v
    in
    let tok = Token.of_int64 v in
    if !exc then Token.with_exc tok else tok

(* ---------- forward declarations via mutual recursion ---------- *)

let rec deliver sim f target tok =
  if f.gen >= 0 then begin
    (if sim.oactive && tok.Token.null then
       match f.probe with Some p -> p.null_tokens <- p.null_tokens + 1 | None -> ());
    match target with
    | Target.To_write w -> (
        match f.writes.(w) with
        | Some _ -> failm "%s: write slot %d received two tokens" f.bi.img.Bi.name w
        | None ->
            if sim.otrace && sim.ofull then
              emit sim
                (Ev.Token
                   {
                     cycle = sim.cycle;
                     block = f.bi.img.Bi.name;
                     seq = f.seq;
                     dst = "W" ^ string_of_int w;
                     op = "-";
                     null = tok.Token.null;
                     pred = false;
                     matched = false;
                   });
            f.writes.(w) <- Some tok;
            output_produced sim f;
            (* wake subscribed younger readers *)
            let subs = f.write_subs.(w) in
            f.write_subs.(w) <- [];
            List.iter
              (fun (rfid, rgen, rslot) ->
                match frame_alive sim rfid rgen with
                | Some rf -> resolve_read sim rf rslot
                | None -> ())
              subs)
    | Target.To_instr { id; slot } -> (
        let i = f.bi.img.Bi.instrs.(id) in
        match slot with
        | Target.Pred ->
            let matched = Instr.predicate_matches i.Bi.pred tok in
            if sim.oactive then (
              match f.probe with
              | Some p -> p.pred_arrivals.(id) <- p.pred_arrivals.(id) + 1
              | None -> ());
            if sim.otrace && sim.ofull then
              emit sim
                (Ev.Token
                   {
                     cycle = sim.cycle;
                     block = f.bi.img.Bi.name;
                     seq = f.seq;
                     dst = Printf.sprintf "I%d.P" id;
                     op = i.Bi.mn;
                     null = tok.Token.null;
                     pred = true;
                     matched;
                   });
            if matched then begin
              if f.pred_matched.(id) then
                failm "%s: I%d two matching predicates" f.bi.img.Bi.name id;
              f.pred_matched.(id) <- true;
              f.pred_exc.(id) <- tok.Token.exc;
              wake sim f id
            end
        | Target.Left | Target.Right ->
            if sim.otrace && sim.ofull then
              emit sim
                (Ev.Token
                   {
                     cycle = sim.cycle;
                     block = f.bi.img.Bi.name;
                     seq = f.seq;
                     dst =
                       Printf.sprintf "I%d.%c" id
                         (match slot with Target.Left -> 'L' | _ -> 'R');
                     op = i.Bi.mn;
                     null = tok.Token.null;
                     pred = false;
                     matched = false;
                   });
            if i.Bi.is_store && tok.Token.null then
              if f.fired.(id) then
                failm "%s: null for fired store I%d" f.bi.img.Bi.name id
              else begin
                f.fired.(id) <- true;
                f.fstats.Stats.nulls_executed <-
                  f.fstats.Stats.nulls_executed + 1;
                resolve_store sim f i.Bi.lsid Nulled
              end
            else begin
              let arr =
                match slot with
                | Target.Left -> f.left
                | Target.Right -> f.right
                | Target.Pred -> assert false
              in
              (match arr.(id) with
              | Some _ ->
                  failm "%s: I%d operand delivered twice" f.bi.img.Bi.name id
              | None -> arr.(id) <- Some tok);
              wake sim f id
            end)
  end

and wake sim f id =
  let i = f.bi.img.Bi.instrs.(id) in
  if (not f.fired.(id)) && not f.queued.(id) then begin
    let data_ok =
      match i.Bi.op with
      | Opcode.Sand -> (
          match f.left.(id) with
          | Some l -> (not (Token.as_predicate l)) || Option.is_some f.right.(id)
          | None -> false)
      | _ ->
          (i.Bi.arity < 1 || Option.is_some f.left.(id))
          && (i.Bi.arity < 2 || Option.is_some f.right.(id))
    in
    let pred_ok = (not i.Bi.predicated) || f.pred_matched.(id) in
    if data_ok && pred_ok then begin
      if sim.otrace && sim.ofull then
        emit sim
          (Ev.Wakeup
             {
               cycle = sim.cycle;
               block = f.bi.img.Bi.name;
               seq = f.seq;
               id;
               op = i.Bi.mn;
             });
      f.queued.(id) <- true;
      rq_push sim.ready.(f.bi.placement.(id))
        (pack_ready ~fid:f.fid ~gen:f.gen ~id);
      sim.ready_count <- sim.ready_count + 1
    end
  end

and output_produced _sim f =
  f.outputs_left <- f.outputs_left - 1;
  if f.outputs_left = 0 then f.complete <- true

and resolve_store sim f lsid r =
  let img = f.bi.img in
  let idx = Bi.store_slot_of img lsid in
  if idx < 0 then failm "%s: undeclared store lsid %d" img.Bi.name lsid;
  (match f.stores.(idx) with
  | Unresolved -> ()
  | Stored _ | Nulled ->
      failm "%s: store lsid %d resolved twice" img.Bi.name lsid);
  f.stores.(idx) <- r;
  f.unres <- f.unres - 1;
  sim.unres_total <- sim.unres_total - 1;
  (match r with
  | Stored _ ->
      f.nstored <- f.nstored + 1;
      sim.stored_total <- sim.stored_total + 1
  | Nulled | Unresolved -> ());
  output_produced sim f;
  (* violation check: younger executed loads that should have seen this
     store *)
  (match r with
  | Unresolved -> ()
  | Stored _ when sim.loads_total = 0 -> ()
  | Stored { s_addr = addr; s_width = width; _ } ->
      let bytes = Mem.width_bytes width in
      let overlap (laddr, lbytes) =
        let a1 = addr and a2 = Int64.add addr (Int64.of_int bytes) in
        let b1 = laddr and b2 = Int64.add laddr (Int64.of_int lbytes) in
        not (a2 <= b1 || b2 <= a1)
      in
      let violator =
        List.find_opt
          (fun fr ->
            List.exists
              (fun (llsid, laddr, lbytes) ->
                (fr.seq > f.seq || (fr.seq = f.seq && llsid > lsid))
                && overlap (laddr, lbytes))
              fr.loads_done)
          (live_frames sim)
      in
      (match violator with
      | Some fv ->
          sim.stats.Stats.lsq_violations <- sim.stats.Stats.lsq_violations + 1;
          (* train the dependence predictor on exactly the violating
             loads: record which store they must wait for *)
          let row = fv.bi.img.Bi.index * sim.dep_stride in
          List.iter
            (fun (llsid, laddr, lbytes) ->
              if
                (fv.seq > f.seq || (fv.seq = f.seq && llsid > lsid))
                && overlap (laddr, lbytes)
                && llsid >= 0 && llsid < sim.dep_stride
              then
                if fv.seq = f.seq then
                  sim.dep_same.(row + llsid) <-
                    max lsid sim.dep_same.(row + llsid)
                else sim.dep_cross.(row + llsid) <- true)
            fv.loads_done;
          flush_from sim fv.seq ~reason:"violation"
            ~refetch:(Some fv.bi.img.Bi.name)
      | None -> ())
  | Nulled -> ());
  (* deferred loads may now proceed *)
  retry_deferred sim

and retry_deferred sim =
  if sim.deferred_total = 0 then ()
  else
  List.iter
    (fun f ->
      let ls = f.deferred_loads in
      f.deferred_loads <- [];
      sim.deferred_total <- sim.deferred_total - List.length ls;
      List.iter
        (fun id ->
          if not f.fired.(id) then begin
            f.queued.(id) <- false;
            wake sim f id
          end)
        ls)
    (live_frames sim)

and flush_from sim seq ~reason ~refetch =
  List.iter
    (fun f ->
      if f.seq >= seq then begin
        if sim.oactive then begin
          let orphans = frame_orphans f in
          mincr sim "sim.blocks_squashed";
          mincr sim ~by:f.fstats.Stats.instrs_executed "sim.instrs_squashed";
          mobserve sim "block.squash_orphans" orphans;
          (match f.probe with
          | Some p ->
              for i = 0 to f.bi.img.Bi.n - 1 do
                if p.pred_arrivals.(i) > 0 then
                  mobserve sim "block.pred_or_arrivals" p.pred_arrivals.(i)
              done
          | None -> ());
          if sim.otrace then
            emit sim
              (Ev.Squash
                 {
                   cycle = sim.cycle;
                   block = f.bi.img.Bi.name;
                   seq = f.seq;
                   reason;
                   orphans;
                 })
        end;
        Stats.add sim.stats f.fstats;
        sim.stats.Stats.blocks_flushed <- sim.stats.Stats.blocks_flushed + 1;
        sim.unres_total <- sim.unres_total - f.unres;
        sim.stored_total <- sim.stored_total - f.nstored;
        sim.deferred_total <- sim.deferred_total - List.length f.deferred_loads;
        sim.loads_total <- sim.loads_total - List.length f.loads_done;
        sim.frames.(f.fid) <- None;
        invalidate_live sim
      end)
    (live_frames sim);
  (* older frames may hold subscriptions from flushed readers: they are
     filtered lazily via frame_alive *)
  (match sim.fetch with
  | Fbusy _ | Fwait _ | Fidle -> ());
  (* any in-flight fetch was ordered after the flushed frames *)
  (match refetch with
  | Some name ->
      start_fetch sim name ~extra:(sim.machine.Machine.predict_cycles)
  | None -> sim.fetch <- Fidle)

and start_fetch sim name ~extra =
  if String.equal name Block.halt_exit then sim.fetch <- Fidle
  else
    (* block names are interned: predictions and exits hand back the
       image's own string objects, so a physical-equality memo skips the
       hashtable on the (very common) repeated target *)
    let idx =
      if name == sim.fetch_memo_name then sim.fetch_memo_idx
      else
        match Bi.find_index sim.img name with
        | None -> failm "no block %s" name
        | Some idx ->
            sim.fetch_memo_name <- name;
            sim.fetch_memo_idx <- idx;
            idx
    in
    let bi = binfo sim idx in
    let pen = icache_penalty sim bi in
    if sim.otrace then
      emit sim (Ev.Fetch { cycle = sim.cycle; block = name; penalty = pen });
    sim.fetch <-
      Fbusy
        {
          idx;
          done_at = sim.cycle + extra + sim.machine.Machine.fetch_cycles + pen;
          held = false;
        }

(* resolve register read slot [rslot] of frame [f]: find the value in
   older in-flight frames or the architectural register file; subscribe
   if the producing write has not arrived yet *)
and resolve_read sim f rslot =
  let r = f.bi.img.Bi.reads.(rslot) in
  let reg = r.Block.reg in
  let frames = sim.frames in
  let nf = Array.length frames in
  (* walk older in-flight frames youngest-first by scanning the frame
     table for the largest seq below the moving bound — ≤ max_inflight²
     compares, no list allocation *)
  let rec search bound =
    let best = ref (-1) and best_seq = ref min_int in
    for i = 0 to nf - 1 do
      match frames.(i) with
      | Some o when o.seq < bound && o.seq > !best_seq ->
          best := i;
          best_seq := o.seq
      | Some _ | None -> ()
    done;
    if !best < 0 then
      (* architectural register file *)
      send_read_value sim f rslot (Token.of_int64 sim.regs.(reg))
    else
      let o = match frames.(!best) with Some o -> o | None -> assert false in
      let wslot =
        if reg >= 0 && reg < 128 then o.bi.img.Bi.wslot_of_reg.(reg) else -1
      in
      if wslot < 0 then search o.seq
      else
        match o.writes.(wslot) with
        | Some tok when tok.Token.null -> search o.seq
        | Some tok -> send_read_value sim f rslot tok
        | None ->
            o.write_subs.(wslot) <- (f.fid, f.gen, rslot) :: o.write_subs.(wslot)
  in
  search f.seq

and send_read_value sim f rslot tok =
  let r = f.bi.img.Bi.reads.(rslot) in
  if sim.otrace && sim.ofull then
    emit sim
      (Ev.Read
         {
           cycle = sim.cycle;
           block = f.bi.img.Bi.name;
           seq = f.seq;
           rslot;
           reg = r.Block.reg;
         });
  let tgts = f.bi.img.Bi.rtargets.(rslot) in
  let hops = f.bi.rd_hops.(rslot) in
  for k = 0 to Array.length tgts - 1 do
    f.pending_events <- f.pending_events + 1;
    schedule sim
      hops.(k)
      {
        ek = 0;
        efid = f.fid;
        egen = f.gen;
        eid = 0;
        etok = tok;
        etok2 = ev_tok0;
        etgt = tgts.(k);
        eexc = false;
        ebtgt = None;
      }
  done

(* send the result of instruction [id] to its targets with network
   delays *)
let send_result sim f id tok =
  let tgts = f.bi.img.Bi.instrs.(id).Bi.targets in
  let hops = f.bi.res_hops.(id) in
  for k = 0 to Array.length tgts - 1 do
    let h = hops.(k) in
    sim.stats.Stats.operand_hops <- sim.stats.Stats.operand_hops + h;
    if sim.oactive then mincr sim ~by:h "sim.operand_hops";
    f.pending_events <- f.pending_events + 1;
    schedule sim h
      {
        ek = 0;
        efid = f.fid;
        egen = f.gen;
        eid = 0;
        etok = tok;
        etok2 = ev_tok0;
        etgt = tgts.(k);
        eexc = false;
        ebtgt = None;
      }
  done

(* called at every real firing (not a deferred-load retry), so it also
   carries the per-issue trace hook *)
let class_stats sim f id (i : Bi.inst) =
  if sim.otrace && sim.ofull then
    emit sim
      (Ev.Issue
         {
           cycle = sim.cycle;
           block = f.bi.img.Bi.name;
           seq = f.seq;
           id;
           op = i.Bi.mn;
           tile = f.bi.placement.(id);
         });
  f.fstats.Stats.instrs_executed <- f.fstats.Stats.instrs_executed + 1;
  match i.Bi.cls with
  | Bi.Smove -> f.fstats.Stats.moves_executed <- f.fstats.Stats.moves_executed + 1
  | Bi.Snull -> f.fstats.Stats.nulls_executed <- f.fstats.Stats.nulls_executed + 1
  | Bi.Stest -> f.fstats.Stats.tests_executed <- f.fstats.Stats.tests_executed + 1
  | Bi.Splain -> ()

(* branch resolution: prediction check, flushes, fetch redirect *)
let resolve_branch sim f target exc exit_idx =
  (match f.branch with
  | Some _ -> failm "%s: two branches fired" f.bi.img.Bi.name
  | None -> ());
  f.branch <- Some (target, exc, exit_idx);
  output_produced sim f;
  let actual = match target with None -> Block.halt_exit | Some t -> t in
  (* train at resolution so the BTB warms before commit; TRIPS predictors
     are speculatively updated too *)
  Predictor.update_hashed sim.predictor ~block_hash:f.bi.img.Bi.name_hash
    ~exit_idx ~target:actual;
  let mispredicted = ref false in
  if not f.prediction_checked then begin
    f.prediction_checked <- true;
    match f.predicted_next with
    | Some predicted ->
        Predictor.record_outcome sim.predictor
          ~correct:(String.equal predicted actual);
        if not (String.equal predicted actual) then begin
          mispredicted := true;
          sim.stats.Stats.branch_mispredicts <-
            sim.stats.Stats.branch_mispredicts + 1;
          flush_from sim (f.seq + 1) ~reason:"mispredict" ~refetch:(Some actual)
        end
    | None -> (
        (* fetch was stalled on us (or we are the youngest) *)
        match sim.fetch with
        | Fwait s when s = f.seq ->
            f.predicted_next <- Some actual;
            start_fetch sim actual ~extra:sim.machine.Machine.predict_cycles
        | Fwait _ | Fidle | Fbusy _ -> f.predicted_next <- Some actual)
  end;
  if sim.oactive then begin
    mincr sim "sim.branch_resolutions";
    if !mispredicted then mincr sim "sim.branch_mispredicts";
    if sim.otrace then
      emit sim
        (Ev.Branch
           {
             cycle = sim.cycle;
             block = f.bi.img.Bi.name;
             seq = f.seq;
             target = actual;
             mispredict = !mispredicted;
           })
  end;
  sim.stats.Stats.branch_predictions <- sim.stats.Stats.branch_predictions + 1

(* execute one pooled event and recycle it; events for squashed frames
   (generation mismatch) are dropped, exactly as the closures'
   [frame_alive] guards did *)
let exec_ev sim ev =
  (match frame_alive sim ev.efid ev.egen with
  | None -> ()
  | Some f -> (
      f.pending_events <- f.pending_events - 1;
      match ev.ek with
      | 0 -> deliver sim f ev.etgt ev.etok
      | 1 -> send_result sim f ev.eid ev.etok
      | 2 ->
          let id = ev.eid in
          let i = f.bi.img.Bi.instrs.(id) in
          let width =
            match i.Bi.op with Opcode.St w -> w | _ -> assert false
          in
          let base = ev.etok and v = ev.etok2 in
          if v.Token.null || base.Token.null then
            resolve_store sim f i.Bi.lsid Nulled
          else
            let addr = Int64.add base.Token.payload i.Bi.imm in
            let exc = base.Token.exc || v.Token.exc || f.pred_exc.(id) in
            resolve_store sim f i.Bi.lsid
              (Stored
                 {
                   s_addr = addr;
                   s_value = v.Token.payload;
                   s_width = width;
                   s_exc = exc;
                 })
      | _ -> resolve_branch sim f ev.ebtgt ev.eexc ev.eid))

(* fire one instruction instance *)
let fire sim f id =
  let i = f.bi.img.Bi.instrs.(id) in
  f.queued.(id) <- false;
  let taint_pred tok = if f.pred_exc.(id) then Token.with_exc tok else tok in
  match i.Bi.op with
  | Opcode.Ld width ->
      let lsid = i.Bi.lsid in
      let must_wait =
        if not sim.machine.Machine.aggressive_loads then
          unresolved_before sim ~seq:f.seq ~lsid
        else if lsid < 0 || lsid >= sim.dep_stride then false
        else begin
          let k = (f.bi.img.Bi.index * sim.dep_stride) + lsid in
          let same = sim.dep_same.(k) and cross = sim.dep_cross.(k) in
          let same_wait =
            same >= 0
            &&
            let img = f.bi.img in
            let rec scan j =
              j < img.Bi.n_stores
              && ((img.Bi.store_lsids.(j) < lsid
                   && img.Bi.store_lsids.(j) <= same
                   && is_unresolved f.stores.(j))
                 || scan (j + 1))
            in
            scan 0
          in
          let cross_wait =
            cross
            && Array.exists
                 (function
                   | Some fr -> fr.seq < f.seq && any_unresolved_store fr
                   | None -> false)
                 sim.frames
          in
          same_wait || cross_wait
        end
      in
      if must_wait then begin
        f.deferred_loads <- id :: f.deferred_loads;
        sim.deferred_total <- sim.deferred_total + 1
      end
      else begin
        f.fired.(id) <- true;
        class_stats sim f id i;
        let base = Option.get f.left.(id) in
        let addr = Int64.add base.Token.payload i.Bi.imm in
        let tok =
          if base.Token.exc || base.Token.null then Token.taint base (Token.of_int64 0L)
          else read_with_forwarding sim ~width ~addr ~seq:f.seq ~lsid
        in
        let tok = taint_pred (Token.taint base tok) in
        if not (base.Token.exc || base.Token.null) then begin
          f.loads_done <- (lsid, addr, Mem.width_bytes width) :: f.loads_done;
          sim.loads_total <- sim.loads_total + 1
        end;
        let lat =
          i.Bi.latency + (2 * f.bi.mem_hops.(id))
          + dcache_latency sim ~addr ~write:false
        in
        f.pending_events <- f.pending_events + 1;
        schedule sim lat
          {
            ek = 1;
            efid = f.fid;
            egen = f.gen;
            eid = id;
            etok = tok;
            etok2 = ev_tok0;
            etgt = ev_tgt0;
            eexc = false;
            ebtgt = None;
          }
      end
  | Opcode.St width ->
      f.fired.(id) <- true;
      class_stats sim f id i;
      ignore width;
      let base = Option.get f.left.(id) in
      let v = Option.get f.right.(id) in
      let lat = i.Bi.latency + f.bi.mem_hops.(id) in
      f.pending_events <- f.pending_events + 1;
      schedule sim lat
        {
          ek = 2;
          efid = f.fid;
          egen = f.gen;
          eid = id;
          etok = base;
          etok2 = v;
          etgt = ev_tgt0;
          eexc = false;
          ebtgt = None;
        }
  | Opcode.Bro ->
      f.fired.(id) <- true;
      class_stats sim f id i;
      let tgt = f.bi.img.Bi.exits.(i.Bi.exit_idx) in
      let tgt = if String.equal tgt Block.halt_exit then None else Some tgt in
      let exc = f.pred_exc.(id) in
      f.pending_events <- f.pending_events + 1;
      schedule sim i.Bi.latency
        {
          ek = 3;
          efid = f.fid;
          egen = f.gen;
          eid = i.Bi.exit_idx;
          etok = ev_tok0;
          etok2 = ev_tok0;
          etgt = ev_tgt0;
          eexc = exc;
          ebtgt = tgt;
        }
  | Opcode.Halt ->
      f.fired.(id) <- true;
      class_stats sim f id i;
      let exc = f.pred_exc.(id) in
      f.pending_events <- f.pending_events + 1;
      schedule sim 1
        {
          ek = 3;
          efid = f.fid;
          egen = f.gen;
          eid = 0;
          etok = ev_tok0;
          etok2 = ev_tok0;
          etgt = ev_tgt0;
          eexc = exc;
          ebtgt = None;
        }
  | Opcode.Sand ->
      f.fired.(id) <- true;
      class_stats sim f id i;
      let l = Option.get f.left.(id) in
      let tok =
        if not (Token.as_predicate l) then Token.taint l (Token.of_int64 0L)
        else
          let r = Option.get f.right.(id) in
          Token.taint l
            (Token.taint r
               (Token.of_int64 (if Token.as_predicate r then 1L else 0L)))
      in
      let tok = taint_pred tok in
      f.pending_events <- f.pending_events + 1;
      schedule sim i.Bi.latency
        {
          ek = 1;
          efid = f.fid;
          egen = f.gen;
          eid = id;
          etok = tok;
          etok2 = ev_tok0;
          etgt = ev_tgt0;
          eexc = false;
          ebtgt = None;
        }
  | _ ->
      f.fired.(id) <- true;
      class_stats sim f id i;
      let tok =
        Alu.exec i.Bi.op ~imm:i.Bi.imm ~left:f.left.(id) ~right:f.right.(id)
      in
      let tok = taint_pred tok in
      f.pending_events <- f.pending_events + 1;
      schedule sim i.Bi.latency
        {
          ek = 1;
          efid = f.fid;
          egen = f.gen;
          eid = id;
          etok = tok;
          etok2 = ev_tok0;
          etgt = ev_tgt0;
          eexc = false;
          ebtgt = None;
        }

(* the arena-debug invariant: a recycled prefix must be
   indistinguishable from freshly allocated arrays — catches a clear
   that goes missing or is mis-bounded when frame state evolves *)
let check_cleared f =
  let n = f.bi.img.Bi.n in
  let ok = ref true in
  for i = 0 to n - 1 do
    if
      f.left.(i) <> None || f.right.(i) <> None || f.pred_matched.(i)
      || f.pred_exc.(i) || f.fired.(i) || f.queued.(i)
    then ok := false
  done;
  for k = 0 to f.bi.img.Bi.n_stores - 1 do
    if f.stores.(k) <> Unresolved then ok := false
  done;
  for w = 0 to f.bi.img.Bi.n_writes - 1 do
    if f.writes.(w) <> None then ok := false
  done;
  for w = 0 to max 1 f.bi.img.Bi.n_writes - 1 do
    if f.write_subs.(w) <> [] then ok := false
  done;
  (match f.probe with
  | Some p ->
      for i = 0 to max 1 n - 1 do
        if p.pred_arrivals.(i) <> 0 then ok := false
      done
  | None -> ());
  if not !ok then failm "%s: arena frame not cleared" f.bi.img.Bi.name

(* dispatch a fetched block into a free frame slot *)
let dispatch sim idx =
  let fid =
    let found = ref (-1) in
    Array.iteri
      (fun i f -> if Option.is_none f && !found < 0 then found := i)
      sim.frames;
    !found
  in
  assert (fid >= 0);
  let bi = binfo sim idx in
  let img = bi.img in
  let n = img.Bi.n in
  let n_writes = img.Bi.n_writes in
  let n_stores = img.Bi.n_stores in
  let left, right, pred_matched, pred_exc, fired, queued, stores, writes,
      write_subs, parr =
    if sim.arena_on then begin
      let b = sim.arena.(fid) in
      Array.fill b.b_left 0 n None;
      Array.fill b.b_right 0 n None;
      Array.fill b.b_pred_matched 0 n false;
      Array.fill b.b_pred_exc 0 n false;
      Array.fill b.b_fired 0 n false;
      Array.fill b.b_queued 0 n false;
      Array.fill b.b_stores 0 n_stores Unresolved;
      Array.fill b.b_writes 0 n_writes None;
      Array.fill b.b_write_subs 0 (max 1 n_writes) [];
      if sim.oactive then Array.fill b.b_probe 0 (max 1 n) 0;
      ( b.b_left, b.b_right, b.b_pred_matched, b.b_pred_exc, b.b_fired,
        b.b_queued, b.b_stores, b.b_writes, b.b_write_subs, b.b_probe )
    end
    else
      ( Array.make n None, Array.make n None, Array.make n false,
        Array.make n false, Array.make n false, Array.make n false,
        Array.make n_stores Unresolved,
        Array.make n_writes None,
        Array.make (max 1 n_writes) [],
        Array.make (max 1 n) 0 )
  in
  let f =
    {
      fid;
      gen = sim.next_gen;
      seq = sim.next_seq;
      bi;
      left;
      right;
      pred_matched;
      pred_exc;
      fired;
      queued;
      stores;
      writes;
      write_subs;
      branch = None;
      predicted_next = None;
      prediction_checked = false;
      outputs_left = img.Bi.outputs;
      pending_events = 0;
      deferred_loads = [];
      loads_done = [];
      unres = n_stores;
      nstored = 0;
      fstats = Stats.create ();
      complete = false;
      dispatched_at = sim.cycle;
      probe =
        (if sim.oactive then Some { pred_arrivals = parr; null_tokens = 0 }
         else None);
    }
  in
  if sim.arena_debug && sim.arena_on then check_cleared f;
  sim.next_seq <- sim.next_seq + 1;
  sim.next_gen <- sim.next_gen + 1;
  sim.unres_total <- sim.unres_total + n_stores;
  sim.frames.(fid) <- Some f;
  invalidate_live sim;
  f.fstats.Stats.blocks_executed <- 1;
  f.fstats.Stats.instrs_fetched <- n;
  if sim.otrace then
    emit sim
      (Ev.Dispatch
         { cycle = sim.cycle; block = img.Bi.name; seq = f.seq; fid; instrs = n });
  if sim.oactive then begin
    mincr sim "sim.blocks_dispatched";
    (* static predicate fanout: how many consumers each test instruction
       feeds through predicate slots (paper §3.3, predicate-OR trees) *)
    Array.iter
      (fun (i : Bi.inst) ->
        if i.Bi.pred_fanout > 0 then
          mobserve sim "block.pred_fanout" i.Bi.pred_fanout)
      img.Bi.instrs
  end;
  (* seed register reads *)
  for rslot = 0 to Array.length img.Bi.reads - 1 do
    resolve_read sim f rslot
  done;
  (* seed 0-operand unpredicated instructions *)
  Array.iter (fun id -> wake sim f id) img.Bi.seeds;
  (* chain the next fetch off a prediction *)
  match Predictor.predict_hashed sim.predictor ~block_hash:img.Bi.name_hash with
  | Some predicted when sim.machine.Machine.max_inflight > 1 ->
      f.predicted_next <- Some predicted;
      start_fetch sim predicted ~extra:sim.machine.Machine.predict_cycles
  | Some _ | None ->
      (match Sys.getenv_opt "DFP_BLOCK_TRACE" with
      | Some _ -> Printf.eprintf "FWAIT after %s at %d\n" img.Bi.name sim.cycle
      | None -> ());
      sim.fetch <- Fwait f.seq

(* commit the oldest frame if it is finished *)
let try_commit sim =
  match oldest_frame sim with
  | None -> ()
  | Some f ->
      let drained =
        sim.machine.Machine.early_termination || f.pending_events = 0
      in
      if f.complete && drained then begin
        let img = f.bi.img in
        (* mispredicated = predicated instructions that never fired *)
        Array.iteri
          (fun id (i : Bi.inst) ->
            if i.Bi.predicated && not f.fired.(id) then
              f.fstats.Stats.mispredicated_fetched <-
                f.fstats.Stats.mispredicated_fetched + 1)
          img.Bi.instrs;
        (* drain stores in lsid (= declaration) order *)
        for k = 0 to img.Bi.n_stores - 1 do
          match f.stores.(k) with
          | Stored { s_addr = addr; s_value = value; s_width = width; s_exc = exc }
            ->
              if exc then
                raise
                  (Fault (Printf.sprintf "store lsid %d" img.Bi.store_lsids.(k)));
              ignore (dcache_latency sim ~addr ~write:true);
              (match Mem.store sim.mem ~width ~addr value with
              | Ok () -> ()
              | Error () ->
                  raise (Fault (Printf.sprintf "store fault at %Ld" addr)))
          | Nulled -> ()
          | Unresolved -> assert false
        done;
        for w = 0 to img.Bi.n_writes - 1 do
          match f.writes.(w) with
          | Some t ->
              if t.Token.null then ()
              else if t.Token.exc then
                raise (Fault (Printf.sprintf "write W%d" w))
              else sim.regs.(img.Bi.write_regs.(w)) <- t.Token.payload
          | None -> assert false
        done;
        let target, bexc, exit_idx =
          match f.branch with Some x -> x | None -> assert false
        in
        if bexc then raise (Fault "branch");
        (match target with
        | Some t ->
            Predictor.update_hashed sim.predictor ~block_hash:img.Bi.name_hash
              ~exit_idx ~target:t
        | None ->
            Predictor.update_hashed sim.predictor ~block_hash:img.Bi.name_hash
              ~exit_idx ~target:Block.halt_exit);
        (match Sys.getenv_opt "DFP_BLOCK_TRACE" with
        | Some _ ->
            Printf.eprintf "BLK %s %d\n" img.Bi.name (sim.cycle - f.dispatched_at)
        | None -> ());
        f.fstats.Stats.blocks_committed <- 1;
        f.fstats.Stats.instrs_committed <- f.fstats.Stats.instrs_executed;
        if sim.oactive then begin
          let orphans = frame_orphans f in
          let nulls =
            match f.probe with Some p -> p.null_tokens | None -> 0
          in
          let occupancy = sim.cycle - f.dispatched_at in
          mincr sim "sim.blocks_committed";
          mincr sim ~by:f.fstats.Stats.instrs_committed "sim.instrs_committed";
          mobserve sim "block.occupancy" occupancy;
          mobserve sim "block.null_tokens" nulls;
          mobserve sim "block.mispredicated"
            f.fstats.Stats.mispredicated_fetched;
          (* work left in flight when early termination let the block
             commit before its dataflow drained (paper §4.3) *)
          if orphans > 0 then mobserve sim "block.early_orphans" orphans;
          (match f.probe with
          | Some p ->
              for i = 0 to img.Bi.n - 1 do
                if p.pred_arrivals.(i) > 0 then
                  mobserve sim "block.pred_or_arrivals" p.pred_arrivals.(i)
              done
          | None -> ());
          if sim.otrace then
            emit sim
              (Ev.Commit
                 {
                   cycle = sim.cycle;
                   block = img.Bi.name;
                   seq = f.seq;
                   instrs = f.fstats.Stats.instrs_committed;
                   nulls;
                   orphans;
                   occupancy;
                 })
        end;
        Stats.add sim.stats f.fstats;
        sim.unres_total <- sim.unres_total - f.unres;
        sim.stored_total <- sim.stored_total - f.nstored;
        sim.deferred_total <- sim.deferred_total - List.length f.deferred_loads;
        sim.loads_total <- sim.loads_total - List.length f.loads_done;
        sim.frames.(f.fid) <- None;
        invalidate_live sim;
        if Option.is_none target then begin
          sim.halted <- true;
          sim.stats.Stats.cycles <- sim.cycle
        end
      end

let step_issue sim =
  if sim.ready_count > 0 then
    for t = 0 to Array.length sim.ready - 1 do
      let q = sim.ready.(t) in
      if q.rlen > 0 then begin
        let budget = ref sim.machine.Machine.issue_per_tile in
        while !budget > 0 && q.rlen > 0 do
          let e = rq_pop q in
          let fid = ready_fid e and gen = ready_gen e and id = ready_id e in
          sim.ready_count <- sim.ready_count - 1;
          match frame_alive sim fid gen with
          | Some f when f.queued.(id) && not f.fired.(id) ->
              decr budget;
              fire sim f id
          | Some _ | None -> ()
        done
      end
    done

let step_fetch sim =
  match sim.fetch with
  | Fbusy b when sim.cycle >= b.done_at ->
      let free_slot = ref false and inflight = ref 0 in
      for k = 0 to Array.length sim.frames - 1 do
        match sim.frames.(k) with
        | Some _ -> incr inflight
        | None -> free_slot := true
      done;
      if !free_slot && !inflight < sim.machine.Machine.max_inflight then begin
        sim.fetch <- Fidle;
        dispatch sim b.idx
      end
      else b.held <- true
  | Fbusy _ | Fwait _ | Fidle -> ()

let next_interesting_cycle sim =
  (* scheduled events are strictly in the future, so when any tile has
     ready work the very next cycle is always the earliest candidate —
     skip the event-queue scan entirely *)
  if sim.ready_count > 0 then sim.cycle + 1
  else begin
    let best =
      match Event_queue.next_due sim.events with Some c -> c | None -> max_int
    in
    let best =
      match sim.fetch with
      | Fbusy b -> min best (max (sim.cycle + 1) b.done_at)
      | Fwait _ | Fidle -> best
    in
    if best = max_int then -1 else best
  end

let make_bufs img =
  let n = max 1 img.Bi.max_n in
  let nw = max 1 img.Bi.max_writes in
  let ns = img.Bi.max_stores in
  {
    b_left = Array.make n None;
    b_right = Array.make n None;
    b_pred_matched = Array.make n false;
    b_pred_exc = Array.make n false;
    b_fired = Array.make n false;
    b_queued = Array.make n false;
    b_stores = Array.make (max 1 ns) Unresolved;
    b_writes = Array.make nw None;
    b_write_subs = Array.make nw [];
    b_probe = Array.make n 0;
  }

let run ?(machine = Machine.default) ?placement ?(obs = Obs.null)
    ?(arena = true) program ~regs ~mem =
  let img = Bi.of_program program in
  let placement =
    match placement with
    | Some p -> p
    | None ->
        let num_tiles = Machine.num_tiles machine in
        fun name ->
          (match Bi.find_index img name with
          | Some i -> default_placement_n ~num_tiles img.Bi.blocks.(i).Bi.n
          | None -> [||])
  in
  let n_blocks = Array.length img.Bi.blocks in
  let dep_stride =
    let m = ref 0 in
    Array.iter
      (fun (b : Bi.t) ->
        Array.iter (fun (i : Bi.inst) -> m := max !m (i.Bi.lsid + 1)) b.Bi.instrs)
      img.Bi.blocks;
    max 1 !m
  in
  let sim =
    {
      img;
      machine;
      placement;
      regs;
      mem;
      stats = Stats.create ();
      l1d =
        Cache.create ~size_bytes:machine.Machine.l1d_size
          ~ways:machine.Machine.l1d_ways ~line_bytes:machine.Machine.line_bytes
          ~hit_latency:machine.Machine.l1d_latency;
      l1i =
        Cache.create ~size_bytes:machine.Machine.l1i_size
          ~ways:machine.Machine.l1i_ways ~line_bytes:machine.Machine.line_bytes
          ~hit_latency:machine.Machine.l1i_latency;
      l2 =
        Cache.create ~size_bytes:machine.Machine.l2_size
          ~ways:machine.Machine.l2_ways ~line_bytes:machine.Machine.line_bytes
          ~hit_latency:machine.Machine.l2_latency;
      predictor =
        Predictor.create ~history_bits:machine.Machine.predictor_history_bits
          ~table_bits:machine.Machine.predictor_table_bits ();
      binfos = Array.make (max 1 n_blocks) None;
      dep_stride;
      dep_same = Array.make (max 1 (n_blocks * dep_stride)) (-1);
      dep_cross = Array.make (max 1 (n_blocks * dep_stride)) false;
      arena =
        (if arena then
           Array.init machine.Machine.max_inflight (fun _ -> make_bufs img)
         else [||]);
      arena_on = arena;
      arena_debug = Sys.getenv_opt "DFP_ARENA_DEBUG" <> None;
      frames = Array.make machine.Machine.max_inflight None;
      live_cache = [];
      live_dirty = false;
      next_seq = 0;
      next_gen = 0;
      fetch = Fidle;
      fetch_memo_name = "";
      fetch_memo_idx = -1;
      events = Event_queue.create ();
      cycle = 0;
      unres_total = 0;
      stored_total = 0;
      deferred_total = 0;
      loads_total = 0;
      ready = Array.init (Machine.num_tiles machine) (fun _ -> rq_create ());
      ready_count = 0;
      halted = false;
      fault = None;
      obs;
      otrace = Obs.tracing obs;
      ofull = obs.Obs.full;
      oactive = Obs.active obs;
      ometrics = obs.Obs.metrics;
    }
  in
  match
    start_fetch sim program.Program.entry ~extra:0;
    while (not sim.halted) && sim.cycle < machine.Machine.max_cycles do
      (* events due now, in scheduling order *)
      Event_queue.drain sim.events ~cycle:sim.cycle (fun ev -> exec_ev sim ev);
      step_issue sim;
      step_fetch sim;
      try_commit sim;
      if not sim.halted then begin
        match next_interesting_cycle sim with
        | c when c >= 0 -> sim.cycle <- max (sim.cycle + 1) c
        | _ ->
            if
              no_live_frames sim
              && (match sim.fetch with Fidle -> true | Fwait _ | Fbusy _ -> false)
            then
              failm "machine idle before halt"
            else if
              Array.exists
                (function Some f -> not f.complete | None -> false)
                sim.frames
              && Event_queue.is_empty sim.events
            then failm "deadlock at cycle %d" sim.cycle
            else sim.cycle <- sim.cycle + 1
      end
    done;
    if not sim.halted then Error (Printf.sprintf "watchdog: %d cycles" sim.cycle)
    else Ok sim.stats
  with
  | r -> r
  | exception Malformed m -> Error ("malformed: " ^ m)
  | exception Fault m -> Error ("fault: " ^ m)
