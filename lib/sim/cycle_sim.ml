module Block = Edge_isa.Block
module Instr = Edge_isa.Instr
module Opcode = Edge_isa.Opcode
module Target = Edge_isa.Target
module Token = Edge_isa.Token
module Mem = Edge_isa.Mem
module Grid = Edge_isa.Grid
module Program = Edge_isa.Program
module Obs = Edge_obs.Obs
module Ev = Edge_obs.Event
module Mx = Edge_obs.Metrics

type placement_fn = string -> int array

exception Malformed of string
exception Fault of string

let failm fmt = Format.kasprintf (fun s -> raise (Malformed s)) fmt

type stored = {
  s_addr : int64;
  s_value : int64;
  s_width : Opcode.width;
  s_exc : bool;
}

type store_res = Unresolved | Stored of stored | Nulled

(* per-frame observability state, allocated only when an [Obs] sink or
   metrics registry is attached — the null-obs fast path pays one [None]
   field per frame *)
type probe = {
  pred_arrivals : int array;
      (* predicate tokens delivered per instruction (matched or not):
         the paper's predicate-OR arrival counts *)
  mutable null_tokens : int;  (* null tokens delivered to this frame *)
}

type frame = {
  fid : int;
  gen : int;
  seq : int;
  block : Block.t;
  placement : int array;
  left : Token.t option array;
  right : Token.t option array;
  pred_matched : bool array;
  pred_exc : bool array;
  fired : bool array;
  queued : bool array;  (* sitting in a ready queue *)
  mutable stores : (int * store_res) array;  (* per declared lsid *)
  writes : Token.t option array;
  write_subs : (int * int * int) list array;
      (* per write slot: (fid, gen, read-slot-resume-key) of younger
         readers waiting; the key is the reader frame's read slot *)
  mutable branch : (string option * bool * int) option;
      (* target, exception, exit_idx *)
  mutable predicted_next : string option;
  mutable prediction_checked : bool;
  mutable outputs_left : int;
  mutable pending_events : int;
  mutable deferred_loads : int list;
  mutable loads_done : (int * int64 * int) list;  (* lsid, addr, bytes *)
  fstats : Stats.t;
  mutable complete : bool;
  dispatched_at : int;
  probe : probe option;
}

type fetch_state =
  | Fidle  (** nothing to fetch (halt predicted/resolved) *)
  | Fwait of int  (** stalled on unresolved branch of frame seq *)
  | Fbusy of { name : string; done_at : int; mutable held : bool }

type sim = {
  program : Program.t;
  machine : Machine.t;
  placement : placement_fn;
  regs : int64 array;
  mem : Mem.t;
  stats : Stats.t;
  l1d : Cache.t;
  l1i : Cache.t;
  l2 : Cache.t;
  predictor : Predictor.t;
  dep_pred : (string * int, int option * bool) Hashtbl.t;
      (* per (block, load lsid): (max conflicting same-frame store lsid,
         conflicts with older frames?) — a store-set-style dependence
         predictor: a load waits only for the stores it was caught
         violating against *)
  block_addr : (string, int64) Hashtbl.t;
  frames : frame option array;
  mutable live_cache : frame list;  (* live frames sorted by seq *)
  mutable live_dirty : bool;  (* [frames] changed since [live_cache] was built *)
  mutable next_seq : int;
  mutable next_gen : int;
  mutable fetch : fetch_state;
  events : (unit -> unit) Event_queue.t;
  mutable cycle : int;
  ready : (int * int * int) Queue.t array;  (* per tile: fid, gen, id *)
  mutable ready_count : int;  (* total entries across [ready] queues *)
  mutable halted : bool;
  mutable fault : string option;
  obs : Obs.t;
  otrace : bool;  (* a trace sink is attached *)
  ofull : bool;  (* instruction/token/cache-level events wanted *)
  oactive : bool;  (* sink or metrics attached: per-frame probes on *)
  ometrics : Mx.t option;
}

(* ---------- observability helpers ----------

   Every call site is guarded on [sim.otrace] / [sim.oactive] so the
   null-obs configuration never constructs an event or a string. *)

let emit sim e = Obs.emit sim.obs e

let mincr ?by sim name =
  match sim.ometrics with Some m -> Mx.incr ?by m name | None -> ()

let mobserve sim name v =
  match sim.ometrics with Some m -> Mx.observe m name v | None -> ()

let opname (i : Instr.t) = Opcode.mnemonic i.Instr.opcode

(* in-flight work a frame abandons when squashed or early-terminated:
   results still on the operand network plus ready-queue entries *)
let frame_orphans f =
  let queued = ref 0 in
  Array.iteri
    (fun i q -> if q && not f.fired.(i) then incr queued)
    f.queued;
  f.pending_events + !queued

let schedule sim dt f =
  Event_queue.add sim.events ~cycle:(sim.cycle + max 1 dt) f

let frame_alive sim fid gen =
  match sim.frames.(fid) with
  | Some f when f.gen = gen -> Some f
  | Some _ | None -> None

(* the live-frame list is rebuilt lazily: dispatch, flush and commit
   (the only writers of [sim.frames]) mark it dirty, and the many
   per-cycle readers share one cached sorted list *)
let invalidate_live sim = sim.live_dirty <- true

let live_frames sim =
  if sim.live_dirty then begin
    sim.live_cache <-
      Array.to_list sim.frames |> List.filter_map Fun.id
      |> List.sort (fun a b -> Int.compare a.seq b.seq);
    sim.live_dirty <- false
  end;
  sim.live_cache

let no_live_frames sim = Array.for_all Option.is_none sim.frames

let oldest_frame sim =
  match live_frames sim with [] -> None | f :: _ -> Some f

(* ---------- memory timing ---------- *)

let dcache_latency sim ~addr ~write =
  sim.stats.Stats.dcache_accesses <- sim.stats.Stats.dcache_accesses + 1;
  if sim.oactive then mincr sim "sim.dcache_accesses";
  if Cache.access sim.l1d ~addr ~write then begin
    if sim.otrace && sim.ofull then
      emit sim (Ev.Cache { cycle = sim.cycle; cache = "l1d"; write; hit = true });
    Cache.hit_latency sim.l1d
  end
  else begin
    sim.stats.Stats.dcache_misses <- sim.stats.Stats.dcache_misses + 1;
    if sim.oactive then mincr sim "sim.dcache_misses";
    if sim.otrace && sim.ofull then
      emit sim (Ev.Cache { cycle = sim.cycle; cache = "l1d"; write; hit = false });
    let l2_hit = Cache.access sim.l2 ~addr ~write in
    if sim.otrace && sim.ofull then
      emit sim (Ev.Cache { cycle = sim.cycle; cache = "l2"; write; hit = l2_hit });
    if l2_hit then Cache.hit_latency sim.l1d + sim.machine.Machine.l2_latency
    else
      Cache.hit_latency sim.l1d + sim.machine.Machine.l2_latency
      + sim.machine.Machine.mem_latency
  end

let icache_penalty sim (b : Block.t) =
  let base =
    Option.value ~default:0L (Hashtbl.find_opt sim.block_addr b.Block.name)
  in
  let words = Block.size_in_words b in
  let lines = max 1 ((words * 4) + sim.machine.Machine.line_bytes - 1)
              / sim.machine.Machine.line_bytes
  in
  let pen = ref 0 in
  for i = 0 to lines - 1 do
    sim.stats.Stats.icache_accesses <- sim.stats.Stats.icache_accesses + 1;
    if sim.oactive then mincr sim "sim.icache_accesses";
    let addr = Int64.add base (Int64.of_int (i * sim.machine.Machine.line_bytes)) in
    let l1i_hit = Cache.access sim.l1i ~addr ~write:false in
    if sim.otrace && sim.ofull then
      emit sim
        (Ev.Cache { cycle = sim.cycle; cache = "l1i"; write = false; hit = l1i_hit });
    if not l1i_hit then begin
      sim.stats.Stats.icache_misses <- sim.stats.Stats.icache_misses + 1;
      if sim.oactive then mincr sim "sim.icache_misses";
      pen :=
        !pen
        + (if Cache.access sim.l2 ~addr ~write:false then
             sim.machine.Machine.l2_latency
           else sim.machine.Machine.l2_latency + sim.machine.Machine.mem_latency)
    end
  done;
  !pen

(* all resolved stores strictly before (seq, lsid) in LSQ order, oldest
   first, across in-flight frames; allocates only for matching entries
   (usually none) *)
let stores_before sim ~seq ~lsid =
  let acc = ref [] in
  List.iter
    (fun f ->
      if f.seq <= seq then
        Array.iter
          (fun (l, r) ->
            if f.seq < seq || l < lsid then
              match r with
              | Stored s -> acc := (f.seq, l, s) :: !acc
              | Nulled | Unresolved -> ())
          f.stores)
    (live_frames sim);
  (* (seq, lsid) keys are unique, so ordering by them alone matches the
     old polymorphic sort of the full triple *)
  List.sort
    (fun (s1, l1, _) (s2, l2, _) ->
      if s1 <> s2 then Int.compare s1 s2 else Int.compare l1 l2)
    !acc

let unresolved_before sim ~seq ~lsid =
  List.exists
    (fun f ->
      Array.exists
        (fun (l, r) ->
          (f.seq < seq || (f.seq = seq && l < lsid)) && r = Unresolved)
        f.stores)
    (live_frames sim)

let read_with_forwarding sim ~width ~addr ~seq ~lsid =
  let nbytes = Mem.width_bytes width in
  let base_tok = Mem.load sim.mem ~width ~addr in
  if base_tok.Token.exc then base_tok
  else
    match stores_before sim ~seq ~lsid with
    | [] ->
        (* no in-flight store to forward from: the byte-merge below
           would reconstruct exactly [Mem.load]'s value (same bytes,
           same sign extension), so skip it *)
        base_tok
    | stores ->
    let bytes = Bytes.create nbytes in
    for i = 0 to nbytes - 1 do
      Bytes.set bytes i
        (Char.chr
           (Int64.to_int
              (Int64.logand
                 (Int64.shift_right_logical base_tok.Token.payload (8 * i))
                 0xFFL)))
    done;
    let exc = ref false in
    List.iter
      (fun (_, _, s) ->
        match s with
        | { s_addr = sa; s_value = value; s_width = sw; s_exc = se } ->
            let sbytes = Mem.width_bytes sw in
            for i = 0 to sbytes - 1 do
              let off = Int64.sub (Int64.add sa (Int64.of_int i)) addr in
              if off >= 0L && off < Int64.of_int nbytes then begin
                if se then exc := true;
                Bytes.set bytes (Int64.to_int off)
                  (Char.chr
                     (Int64.to_int
                        (Int64.logand (Int64.shift_right_logical value (8 * i)) 0xFFL)))
              end
            done)
      stores;
    let v = ref 0L in
    for i = nbytes - 1 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8)
             (Int64.of_int (Char.code (Bytes.get bytes i)))
    done;
    let v =
      match width with
      | Opcode.W1 ->
          if Int64.logand !v 0x80L <> 0L then Int64.logor !v (Int64.lognot 0xFFL)
          else !v
      | Opcode.W4 ->
          if Int64.logand !v 0x80000000L <> 0L then
            Int64.logor !v (Int64.lognot 0xFFFFFFFFL)
          else !v
      | Opcode.W8 -> !v
    in
    let tok = Token.of_int64 v in
    if !exc then Token.with_exc tok else tok

(* ---------- forward declarations via mutual recursion ---------- *)

let rec deliver sim f (target, tok) =
  if f.gen >= 0 then begin
    (if sim.oactive && tok.Token.null then
       match f.probe with Some p -> p.null_tokens <- p.null_tokens + 1 | None -> ());
    match target with
    | Target.To_write w -> (
        match f.writes.(w) with
        | Some _ -> failm "%s: write slot %d received two tokens" f.block.Block.name w
        | None ->
            if sim.otrace && sim.ofull then
              emit sim
                (Ev.Token
                   {
                     cycle = sim.cycle;
                     block = f.block.Block.name;
                     seq = f.seq;
                     dst = "W" ^ string_of_int w;
                     op = "-";
                     null = tok.Token.null;
                     pred = false;
                     matched = false;
                   });
            f.writes.(w) <- Some tok;
            output_produced sim f;
            (* wake subscribed younger readers *)
            let subs = f.write_subs.(w) in
            f.write_subs.(w) <- [];
            List.iter
              (fun (rfid, rgen, rslot) ->
                match frame_alive sim rfid rgen with
                | Some rf -> resolve_read sim rf rslot
                | None -> ())
              subs)
    | Target.To_instr { id; slot } -> (
        let i = f.block.Block.instrs.(id) in
        match slot with
        | Target.Pred ->
            let matched = Instr.predicate_matches i.Instr.pred tok in
            if sim.oactive then (
              match f.probe with
              | Some p -> p.pred_arrivals.(id) <- p.pred_arrivals.(id) + 1
              | None -> ());
            if sim.otrace && sim.ofull then
              emit sim
                (Ev.Token
                   {
                     cycle = sim.cycle;
                     block = f.block.Block.name;
                     seq = f.seq;
                     dst = Printf.sprintf "I%d.P" id;
                     op = opname i;
                     null = tok.Token.null;
                     pred = true;
                     matched;
                   });
            if matched then begin
              if f.pred_matched.(id) then
                failm "%s: I%d two matching predicates" f.block.Block.name id;
              f.pred_matched.(id) <- true;
              f.pred_exc.(id) <- tok.Token.exc;
              wake sim f id
            end
        | Target.Left | Target.Right -> (
            if sim.otrace && sim.ofull then
              emit sim
                (Ev.Token
                   {
                     cycle = sim.cycle;
                     block = f.block.Block.name;
                     seq = f.seq;
                     dst =
                       Printf.sprintf "I%d.%c" id
                         (match slot with Target.Left -> 'L' | _ -> 'R');
                     op = opname i;
                     null = tok.Token.null;
                     pred = false;
                     matched = false;
                   });
            match i.Instr.opcode with
            | Opcode.St _ when tok.Token.null ->
                if f.fired.(id) then
                  failm "%s: null for fired store I%d" f.block.Block.name id
                else begin
                  f.fired.(id) <- true;
                  f.fstats.Stats.nulls_executed <-
                    f.fstats.Stats.nulls_executed + 1;
                  resolve_store sim f i.Instr.lsid Nulled
                end
            | _ ->
                let arr =
                  match slot with
                  | Target.Left -> f.left
                  | Target.Right -> f.right
                  | Target.Pred -> assert false
                in
                (match arr.(id) with
                | Some _ ->
                    failm "%s: I%d operand delivered twice" f.block.Block.name id
                | None -> arr.(id) <- Some tok);
                wake sim f id))
  end

and wake sim f id =
  let i = f.block.Block.instrs.(id) in
  if (not f.fired.(id)) && not f.queued.(id) then begin
    let arity = Opcode.num_operands i.Instr.opcode in
    let data_ok =
      match i.Instr.opcode with
      | Opcode.Sand -> (
          match f.left.(id) with
          | Some l -> (not (Token.as_predicate l)) || f.right.(id) <> None
          | None -> false)
      | _ ->
          (arity < 1 || f.left.(id) <> None)
          && (arity < 2 || f.right.(id) <> None)
    in
    let pred_ok = (not (Instr.is_predicated i)) || f.pred_matched.(id) in
    if data_ok && pred_ok then begin
      if sim.otrace && sim.ofull then
        emit sim
          (Ev.Wakeup
             {
               cycle = sim.cycle;
               block = f.block.Block.name;
               seq = f.seq;
               id;
               op = opname i;
             });
      f.queued.(id) <- true;
      Queue.add (f.fid, f.gen, id) sim.ready.(f.placement.(id));
      sim.ready_count <- sim.ready_count + 1
    end
  end

and output_produced _sim f =
  f.outputs_left <- f.outputs_left - 1;
  if f.outputs_left = 0 then f.complete <- true

and resolve_store sim f lsid r =
  let idx = ref (-1) in
  Array.iteri (fun i (l, _) -> if l = lsid then idx := i) f.stores;
  if !idx < 0 then failm "%s: undeclared store lsid %d" f.block.Block.name lsid;
  (match f.stores.(!idx) with
  | _, Unresolved -> ()
  | _, (Stored _ | Nulled) ->
      failm "%s: store lsid %d resolved twice" f.block.Block.name lsid);
  f.stores.(!idx) <- (lsid, r);
  output_produced sim f;
  (* violation check: younger executed loads that should have seen this
     store *)
  (match r with
  | Unresolved -> ()
  | Stored { s_addr = addr; s_width = width; _ } ->
      let bytes = Mem.width_bytes width in
      let overlap (laddr, lbytes) =
        let a1 = addr and a2 = Int64.add addr (Int64.of_int bytes) in
        let b1 = laddr and b2 = Int64.add laddr (Int64.of_int lbytes) in
        not (a2 <= b1 || b2 <= a1)
      in
      let violator =
        List.find_opt
          (fun fr ->
            List.exists
              (fun (llsid, laddr, lbytes) ->
                (fr.seq > f.seq || (fr.seq = f.seq && llsid > lsid))
                && overlap (laddr, lbytes))
              fr.loads_done)
          (live_frames sim)
      in
      (match violator with
      | Some fv ->
          sim.stats.Stats.lsq_violations <- sim.stats.Stats.lsq_violations + 1;
          (* train the dependence predictor on exactly the violating
             loads: record which store they must wait for *)
          List.iter
            (fun (llsid, laddr, lbytes) ->
              if
                (fv.seq > f.seq || (fv.seq = f.seq && llsid > lsid))
                && overlap (laddr, lbytes)
              then begin
                let key = (fv.block.Block.name, llsid) in
                let same, cross =
                  Option.value ~default:(None, false)
                    (Hashtbl.find_opt sim.dep_pred key)
                in
                let entry =
                  if fv.seq = f.seq then
                    (Some (max lsid (Option.value ~default:(-1) same)), cross)
                  else (same, true)
                in
                Hashtbl.replace sim.dep_pred key entry
              end)
            fv.loads_done;
          flush_from sim fv.seq ~reason:"violation"
            ~refetch:(Some fv.block.Block.name)
      | None -> ())
  | Nulled -> ());
  (* deferred loads may now proceed *)
  retry_deferred sim

and retry_deferred sim =
  List.iter
    (fun f ->
      let ls = f.deferred_loads in
      f.deferred_loads <- [];
      List.iter
        (fun id ->
          if not f.fired.(id) then begin
            f.queued.(id) <- false;
            wake sim f id
          end)
        ls)
    (live_frames sim)

and flush_from sim seq ~reason ~refetch =
  List.iter
    (fun f ->
      if f.seq >= seq then begin
        if sim.oactive then begin
          let orphans = frame_orphans f in
          mincr sim "sim.blocks_squashed";
          mincr sim ~by:f.fstats.Stats.instrs_executed "sim.instrs_squashed";
          mobserve sim "block.squash_orphans" orphans;
          (match f.probe with
          | Some p ->
              Array.iter
                (fun n -> if n > 0 then mobserve sim "block.pred_or_arrivals" n)
                p.pred_arrivals
          | None -> ());
          if sim.otrace then
            emit sim
              (Ev.Squash
                 {
                   cycle = sim.cycle;
                   block = f.block.Block.name;
                   seq = f.seq;
                   reason;
                   orphans;
                 })
        end;
        Stats.add sim.stats f.fstats;
        sim.stats.Stats.blocks_flushed <- sim.stats.Stats.blocks_flushed + 1;
        sim.frames.(f.fid) <- None;
        invalidate_live sim
      end)
    (live_frames sim);
  (* older frames may hold subscriptions from flushed readers: they are
     filtered lazily via frame_alive *)
  (match sim.fetch with
  | Fbusy _ | Fwait _ | Fidle -> ());
  (* any in-flight fetch was ordered after the flushed frames *)
  (match refetch with
  | Some name ->
      start_fetch sim name ~extra:(sim.machine.Machine.predict_cycles)
  | None -> sim.fetch <- Fidle)

and start_fetch sim name ~extra =
  if String.equal name Block.halt_exit then sim.fetch <- Fidle
  else
    match Program.find sim.program name with
    | None -> failm "no block %s" name
    | Some b ->
        let pen = icache_penalty sim b in
        if sim.otrace then
          emit sim (Ev.Fetch { cycle = sim.cycle; block = name; penalty = pen });
        sim.fetch <-
          Fbusy
            {
              name;
              done_at = sim.cycle + extra + sim.machine.Machine.fetch_cycles + pen;
              held = false;
            }

(* resolve register read slot [rslot] of frame [f]: find the value in
   older in-flight frames or the architectural register file; subscribe
   if the producing write has not arrived yet *)
and resolve_read sim f rslot =
  let r = f.block.Block.reads.(rslot) in
  let older =
    List.rev (List.filter (fun o -> o.seq < f.seq) (live_frames sim))
  in
  (* youngest-first *)
  let rec search = function
    | [] ->
        (* architectural register file *)
        send_read_value sim f rslot (Token.of_int64 sim.regs.(r.Block.reg))
    | o :: rest -> (
        let wslot =
          let found = ref (-1) in
          Array.iteri
            (fun wi (w : Block.write) ->
              if w.Block.wreg = r.Block.reg && !found < 0 then found := wi)
            o.block.Block.writes;
          !found
        in
        if wslot < 0 then search rest
        else
          match o.writes.(wslot) with
          | Some tok when tok.Token.null -> search rest
          | Some tok -> send_read_value sim f rslot tok
          | None ->
              o.write_subs.(wslot) <- (f.fid, f.gen, rslot) :: o.write_subs.(wslot))
  in
  search older

and send_read_value sim f rslot tok =
  let r = f.block.Block.reads.(rslot) in
  if sim.otrace && sim.ofull then
    emit sim
      (Ev.Read
         {
           cycle = sim.cycle;
           block = f.block.Block.name;
           seq = f.seq;
           rslot;
           reg = r.Block.reg;
         });
  List.iter
    (fun tgt ->
      let hops =
        match tgt with
        | Target.To_instr { id; _ } -> Grid.reg_access_hops f.placement.(id)
        | Target.To_write _ -> 1
      in
      f.pending_events <- f.pending_events + 1;
      let fid = f.fid and gen = f.gen in
      schedule sim hops (fun () ->
          match frame_alive sim fid gen with
          | Some f ->
              f.pending_events <- f.pending_events - 1;
              deliver sim f (tgt, tok)
          | None -> ()))
    r.Block.rtargets

let default_placement (b : Block.t) =
  Array.init (Array.length b.Block.instrs) (fun i -> i mod Grid.num_tiles)

(* send the result of instruction [id] to its targets with network
   delays *)
let send_result sim f id tok =
  let i = f.block.Block.instrs.(id) in
  let src = f.placement.(id) in
  List.iter
    (fun tgt ->
      let hops =
        match tgt with
        | Target.To_instr { id = d; _ } ->
            let h = Grid.hops src f.placement.(d) in
            sim.stats.Stats.operand_hops <- sim.stats.Stats.operand_hops + h;
            h
        | Target.To_write _ ->
            let h = Grid.reg_access_hops src in
            sim.stats.Stats.operand_hops <- sim.stats.Stats.operand_hops + h;
            h
      in
      if sim.oactive then mincr sim ~by:hops "sim.operand_hops";
      f.pending_events <- f.pending_events + 1;
      let fid = f.fid and gen = f.gen in
      schedule sim hops (fun () ->
          match frame_alive sim fid gen with
          | Some f ->
              f.pending_events <- f.pending_events - 1;
              deliver sim f (tgt, tok)
          | None -> ()))
    i.Instr.targets

(* called at every real firing (not a deferred-load retry), so it also
   carries the per-issue trace hook *)
let class_stats sim f id (i : Instr.t) =
  if sim.otrace && sim.ofull then
    emit sim
      (Ev.Issue
         {
           cycle = sim.cycle;
           block = f.block.Block.name;
           seq = f.seq;
           id;
           op = opname i;
           tile = f.placement.(id);
         });
  f.fstats.Stats.instrs_executed <- f.fstats.Stats.instrs_executed + 1;
  match i.Instr.opcode with
  | Opcode.Un Opcode.Mov | Opcode.Mov4 ->
      f.fstats.Stats.moves_executed <- f.fstats.Stats.moves_executed + 1
  | Opcode.Null -> f.fstats.Stats.nulls_executed <- f.fstats.Stats.nulls_executed + 1
  | Opcode.Tst _ | Opcode.Tsti _ | Opcode.Ftst _ ->
      f.fstats.Stats.tests_executed <- f.fstats.Stats.tests_executed + 1
  | _ -> ()

(* branch resolution: prediction check, flushes, fetch redirect *)
let resolve_branch sim f target exc exit_idx =
  (match f.branch with
  | Some _ -> failm "%s: two branches fired" f.block.Block.name
  | None -> ());
  f.branch <- Some (target, exc, exit_idx);
  output_produced sim f;
  let actual = match target with None -> Block.halt_exit | Some t -> t in
  (* train at resolution so the BTB warms before commit; TRIPS predictors
     are speculatively updated too *)
  Predictor.update sim.predictor ~block:f.block.Block.name ~exit_idx
    ~target:actual;
  let mispredicted = ref false in
  if not f.prediction_checked then begin
    f.prediction_checked <- true;
    match f.predicted_next with
    | Some predicted ->
        Predictor.record_outcome sim.predictor
          ~correct:(String.equal predicted actual);
        if not (String.equal predicted actual) then begin
          mispredicted := true;
          sim.stats.Stats.branch_mispredicts <-
            sim.stats.Stats.branch_mispredicts + 1;
          flush_from sim (f.seq + 1) ~reason:"mispredict" ~refetch:(Some actual)
        end
    | None -> (
        (* fetch was stalled on us (or we are the youngest) *)
        match sim.fetch with
        | Fwait s when s = f.seq ->
            f.predicted_next <- Some actual;
            start_fetch sim actual ~extra:sim.machine.Machine.predict_cycles
        | Fwait _ | Fidle | Fbusy _ -> f.predicted_next <- Some actual)
  end;
  if sim.oactive then begin
    mincr sim "sim.branch_resolutions";
    if !mispredicted then mincr sim "sim.branch_mispredicts";
    if sim.otrace then
      emit sim
        (Ev.Branch
           {
             cycle = sim.cycle;
             block = f.block.Block.name;
             seq = f.seq;
             target = actual;
             mispredict = !mispredicted;
           })
  end;
  sim.stats.Stats.branch_predictions <- sim.stats.Stats.branch_predictions + 1

(* fire one instruction instance *)
let fire sim f id =
  let i = f.block.Block.instrs.(id) in
  f.queued.(id) <- false;
  let taint_pred tok = if f.pred_exc.(id) then Token.with_exc tok else tok in
  match i.Instr.opcode with
  | Opcode.Ld width ->
      let must_wait =
        if not sim.machine.Machine.aggressive_loads then
          unresolved_before sim ~seq:f.seq ~lsid:i.Instr.lsid
        else
          match
            Hashtbl.find_opt sim.dep_pred (f.block.Block.name, i.Instr.lsid)
          with
          | None -> false
          | Some (same, cross) ->
              let same_wait =
                match same with
                | None -> false
                | Some s ->
                    Array.exists
                      (fun (l, r) ->
                        l < i.Instr.lsid && l <= s && r = Unresolved)
                      f.stores
              in
              let cross_wait =
                cross
                && List.exists
                     (fun fr ->
                       fr.seq < f.seq
                       && Array.exists (fun (_, r) -> r = Unresolved) fr.stores)
                     (live_frames sim)
              in
              same_wait || cross_wait
      in
      if must_wait then f.deferred_loads <- id :: f.deferred_loads
      else begin
        f.fired.(id) <- true;
        class_stats sim f id i;
        let base = Option.get f.left.(id) in
        let addr = Int64.add base.Token.payload i.Instr.imm in
        let tok =
          if base.Token.exc || base.Token.null then Token.taint base (Token.of_int64 0L)
          else read_with_forwarding sim ~width ~addr ~seq:f.seq ~lsid:i.Instr.lsid
        in
        let tok = taint_pred (Token.taint base tok) in
        if not (base.Token.exc || base.Token.null) then
          f.loads_done <-
            (i.Instr.lsid, addr, Mem.width_bytes width) :: f.loads_done;
        let lat =
          Opcode.latency i.Instr.opcode
          + (2 * Grid.mem_access_hops f.placement.(id))
          + dcache_latency sim ~addr ~write:false
        in
        f.pending_events <- f.pending_events + 1;
        let fid = f.fid and gen = f.gen in
        schedule sim lat (fun () ->
            match frame_alive sim fid gen with
            | Some f ->
                f.pending_events <- f.pending_events - 1;
                send_result sim f id tok
            | None -> ())
      end
  | Opcode.St width ->
      f.fired.(id) <- true;
      class_stats sim f id i;
      let base = Option.get f.left.(id) in
      let v = Option.get f.right.(id) in
      let lat =
        Opcode.latency i.Instr.opcode + Grid.mem_access_hops f.placement.(id)
      in
      f.pending_events <- f.pending_events + 1;
      let fid = f.fid and gen = f.gen in
      schedule sim lat (fun () ->
          match frame_alive sim fid gen with
          | Some f ->
              f.pending_events <- f.pending_events - 1;
              if v.Token.null || base.Token.null then
                resolve_store sim f i.Instr.lsid Nulled
              else
                let addr = Int64.add base.Token.payload i.Instr.imm in
                let exc = base.Token.exc || v.Token.exc || f.pred_exc.(id) in
                resolve_store sim f i.Instr.lsid
                  (Stored
                     {
                       s_addr = addr;
                       s_value = v.Token.payload;
                       s_width = width;
                       s_exc = exc;
                     })
          | None -> ())
  | Opcode.Bro ->
      f.fired.(id) <- true;
      class_stats sim f id i;
      let tgt = f.block.Block.exits.(i.Instr.exit_idx) in
      let tgt = if String.equal tgt Block.halt_exit then None else Some tgt in
      let exc = f.pred_exc.(id) in
      let exit_idx = i.Instr.exit_idx in
      f.pending_events <- f.pending_events + 1;
      let fid = f.fid and gen = f.gen in
      schedule sim (Opcode.latency i.Instr.opcode) (fun () ->
          match frame_alive sim fid gen with
          | Some f ->
              f.pending_events <- f.pending_events - 1;
              resolve_branch sim f tgt exc exit_idx
          | None -> ())
  | Opcode.Halt ->
      f.fired.(id) <- true;
      class_stats sim f id i;
      let exc = f.pred_exc.(id) in
      f.pending_events <- f.pending_events + 1;
      let fid = f.fid and gen = f.gen in
      schedule sim 1 (fun () ->
          match frame_alive sim fid gen with
          | Some f ->
              f.pending_events <- f.pending_events - 1;
              resolve_branch sim f None exc 0
          | None -> ())
  | Opcode.Sand ->
      f.fired.(id) <- true;
      class_stats sim f id i;
      let l = Option.get f.left.(id) in
      let tok =
        if not (Token.as_predicate l) then Token.taint l (Token.of_int64 0L)
        else
          let r = Option.get f.right.(id) in
          Token.taint l
            (Token.taint r
               (Token.of_int64 (if Token.as_predicate r then 1L else 0L)))
      in
      let tok = taint_pred tok in
      f.pending_events <- f.pending_events + 1;
      let fid = f.fid and gen = f.gen in
      schedule sim (Opcode.latency i.Instr.opcode) (fun () ->
          match frame_alive sim fid gen with
          | Some f ->
              f.pending_events <- f.pending_events - 1;
              send_result sim f id tok
          | None -> ())
  | _ ->
      f.fired.(id) <- true;
      class_stats sim f id i;
      let tok =
        Alu.exec i.Instr.opcode ~imm:i.Instr.imm ~left:f.left.(id)
          ~right:f.right.(id)
      in
      let tok = taint_pred tok in
      f.pending_events <- f.pending_events + 1;
      let fid = f.fid and gen = f.gen in
      schedule sim (Opcode.latency i.Instr.opcode) (fun () ->
          match frame_alive sim fid gen with
          | Some f ->
              f.pending_events <- f.pending_events - 1;
              send_result sim f id tok
          | None -> ())

(* dispatch a fetched block into a free frame slot *)
let dispatch sim name =
  let fid =
    let found = ref (-1) in
    Array.iteri (fun i f -> if f = None && !found < 0 then found := i) sim.frames;
    !found
  in
  assert (fid >= 0);
  let b = Option.get (Program.find sim.program name) in
  let n = Array.length b.Block.instrs in
  let placement = sim.placement name in
  let placement =
    if Array.length placement = n then placement else default_placement b
  in
  let f =
    {
      fid;
      gen = sim.next_gen;
      seq = sim.next_seq;
      block = b;
      placement;
      left = Array.make n None;
      right = Array.make n None;
      pred_matched = Array.make n false;
      pred_exc = Array.make n false;
      fired = Array.make n false;
      queued = Array.make n false;
      stores = Array.of_list (List.map (fun l -> (l, Unresolved)) b.Block.store_lsids);
      writes = Array.make (Array.length b.Block.writes) None;
      write_subs = Array.make (max 1 (Array.length b.Block.writes)) [];
      branch = None;
      predicted_next = None;
      prediction_checked = false;
      outputs_left =
        Array.length b.Block.writes + List.length b.Block.store_lsids + 1;
      pending_events = 0;
      deferred_loads = [];
      loads_done = [];
      fstats = Stats.create ();
      complete = false;
      dispatched_at = sim.cycle;
      probe =
        (if sim.oactive then
           Some { pred_arrivals = Array.make (max 1 n) 0; null_tokens = 0 }
         else None);
    }
  in
  sim.next_seq <- sim.next_seq + 1;
  sim.next_gen <- sim.next_gen + 1;
  sim.frames.(fid) <- Some f;
  invalidate_live sim;
  f.fstats.Stats.blocks_executed <- 1;
  f.fstats.Stats.instrs_fetched <- n;
  if sim.otrace then
    emit sim
      (Ev.Dispatch { cycle = sim.cycle; block = name; seq = f.seq; fid; instrs = n });
  if sim.oactive then begin
    mincr sim "sim.blocks_dispatched";
    (* static predicate fanout: how many consumers each test instruction
       feeds through predicate slots (paper §3.3, predicate-OR trees) *)
    Array.iter
      (fun (i : Instr.t) ->
        let fanout =
          List.fold_left
            (fun acc t ->
              match t with
              | Target.To_instr { slot = Target.Pred; _ } -> acc + 1
              | _ -> acc)
            0 i.Instr.targets
        in
        if fanout > 0 then mobserve sim "block.pred_fanout" fanout)
      b.Block.instrs
  end;
  (* seed register reads *)
  Array.iteri (fun rslot _ -> resolve_read sim f rslot) b.Block.reads;
  (* seed 0-operand unpredicated instructions *)
  Array.iteri
    (fun id (i : Instr.t) ->
      if Opcode.num_operands i.Instr.opcode = 0 && not (Instr.is_predicated i)
      then wake sim f id)
    b.Block.instrs;
  (* chain the next fetch off a prediction *)
  (match Predictor.predict sim.predictor ~block:name with
  | Some predicted when sim.machine.Machine.max_inflight > 1 ->
      f.predicted_next <- Some predicted;
      start_fetch sim predicted ~extra:sim.machine.Machine.predict_cycles
  | Some _ | None ->
      (match Sys.getenv_opt "DFP_BLOCK_TRACE" with
      | Some _ -> Printf.eprintf "FWAIT after %s at %d\n" name sim.cycle
      | None -> ());
      sim.fetch <- Fwait f.seq)

(* commit the oldest frame if it is finished *)
let try_commit sim =
  match oldest_frame sim with
  | None -> ()
  | Some f ->
      let drained =
        sim.machine.Machine.early_termination || f.pending_events = 0
      in
      if f.complete && drained then begin
        (* mispredicated = predicated instructions that never fired *)
        Array.iteri
          (fun id (i : Instr.t) ->
            if Instr.is_predicated i && not f.fired.(id) then
              f.fstats.Stats.mispredicated_fetched <-
                f.fstats.Stats.mispredicated_fetched + 1)
          f.block.Block.instrs;
        (* drain stores in lsid order *)
        Array.iter
          (fun (lsid, r) ->
            match r with
            | Stored { s_addr = addr; s_value = value; s_width = width; s_exc = exc } ->
                if exc then raise (Fault (Printf.sprintf "store lsid %d" lsid));
                ignore (dcache_latency sim ~addr ~write:true);
                (match Mem.store sim.mem ~width ~addr value with
                | Ok () -> ()
                | Error () ->
                    raise (Fault (Printf.sprintf "store fault at %Ld" addr)))
            | Nulled -> ()
            | Unresolved -> assert false)
          f.stores;
        Array.iteri
          (fun w tok ->
            match tok with
            | Some t ->
                if t.Token.null then ()
                else if t.Token.exc then
                  raise (Fault (Printf.sprintf "write W%d" w))
                else sim.regs.(f.block.Block.writes.(w).Block.wreg) <- t.Token.payload
            | None -> assert false)
          f.writes;
        let target, bexc, exit_idx =
          match f.branch with Some x -> x | None -> assert false
        in
        if bexc then raise (Fault "branch");
        (match target with
        | Some t ->
            Predictor.update sim.predictor ~block:f.block.Block.name ~exit_idx
              ~target:t
        | None ->
            Predictor.update sim.predictor ~block:f.block.Block.name ~exit_idx
              ~target:Block.halt_exit);
        (match Sys.getenv_opt "DFP_BLOCK_TRACE" with
        | Some _ ->
            Printf.eprintf "BLK %s %d\n" f.block.Block.name
              (sim.cycle - f.dispatched_at)
        | None -> ());
        f.fstats.Stats.blocks_committed <- 1;
        f.fstats.Stats.instrs_committed <- f.fstats.Stats.instrs_executed;
        if sim.oactive then begin
          let orphans = frame_orphans f in
          let nulls =
            match f.probe with Some p -> p.null_tokens | None -> 0
          in
          let occupancy = sim.cycle - f.dispatched_at in
          mincr sim "sim.blocks_committed";
          mincr sim ~by:f.fstats.Stats.instrs_committed "sim.instrs_committed";
          mobserve sim "block.occupancy" occupancy;
          mobserve sim "block.null_tokens" nulls;
          mobserve sim "block.mispredicated"
            f.fstats.Stats.mispredicated_fetched;
          (* work left in flight when early termination let the block
             commit before its dataflow drained (paper §4.3) *)
          if orphans > 0 then mobserve sim "block.early_orphans" orphans;
          (match f.probe with
          | Some p ->
              Array.iter
                (fun n -> if n > 0 then mobserve sim "block.pred_or_arrivals" n)
                p.pred_arrivals
          | None -> ());
          if sim.otrace then
            emit sim
              (Ev.Commit
                 {
                   cycle = sim.cycle;
                   block = f.block.Block.name;
                   seq = f.seq;
                   instrs = f.fstats.Stats.instrs_committed;
                   nulls;
                   orphans;
                   occupancy;
                 })
        end;
        Stats.add sim.stats f.fstats;
        sim.frames.(f.fid) <- None;
        invalidate_live sim;
        if target = None then begin
          sim.halted <- true;
          sim.stats.Stats.cycles <- sim.cycle
        end
      end

let step_issue sim =
  if sim.ready_count > 0 then
    Array.iter
      (fun q ->
        if not (Queue.is_empty q) then begin
          let budget = ref sim.machine.Machine.issue_per_tile in
          while !budget > 0 && not (Queue.is_empty q) do
            let fid, gen, id = Queue.pop q in
            sim.ready_count <- sim.ready_count - 1;
            match frame_alive sim fid gen with
            | Some f when f.queued.(id) && not f.fired.(id) ->
                decr budget;
                fire sim f id
            | Some _ | None -> ()
          done
        end)
      sim.ready

let step_fetch sim =
  match sim.fetch with
  | Fbusy b when sim.cycle >= b.done_at ->
      let free_slot = Array.exists Option.is_none sim.frames in
      let inflight = List.length (live_frames sim) in
      if free_slot && inflight < sim.machine.Machine.max_inflight then begin
        sim.fetch <- Fidle;
        dispatch sim b.name
      end
      else b.held <- true
  | Fbusy _ | Fwait _ | Fidle -> ()

let next_interesting_cycle sim =
  (* scheduled events are strictly in the future, so when any tile has
     ready work the very next cycle is always the earliest candidate —
     skip the event-queue scan entirely *)
  if sim.ready_count > 0 then sim.cycle + 1
  else begin
    let best =
      match Event_queue.next_due sim.events with Some c -> c | None -> max_int
    in
    let best =
      match sim.fetch with
      | Fbusy b -> min best (max (sim.cycle + 1) b.done_at)
      | Fwait _ | Fidle -> best
    in
    if best = max_int then -1 else best
  end

let run ?(machine = Machine.default) ?placement ?(obs = Obs.null) program
    ~regs ~mem =
  let placement =
    match placement with
    | Some p -> p
    | None ->
        fun name ->
          (match Program.find program name with
          | Some b -> default_placement b
          | None -> [||])
  in
  let sim =
    {
      program;
      machine;
      placement;
      regs;
      mem;
      stats = Stats.create ();
      l1d =
        Cache.create ~size_bytes:machine.Machine.l1d_size
          ~ways:machine.Machine.l1d_ways ~line_bytes:machine.Machine.line_bytes
          ~hit_latency:machine.Machine.l1d_latency;
      l1i =
        Cache.create ~size_bytes:machine.Machine.l1i_size
          ~ways:machine.Machine.l1i_ways ~line_bytes:machine.Machine.line_bytes
          ~hit_latency:machine.Machine.l1i_latency;
      l2 =
        Cache.create ~size_bytes:machine.Machine.l2_size
          ~ways:machine.Machine.l2_ways ~line_bytes:machine.Machine.line_bytes
          ~hit_latency:machine.Machine.l2_latency;
      predictor = Predictor.create ();
      dep_pred = Hashtbl.create 64;
      block_addr = Hashtbl.create 64;
      frames = Array.make machine.Machine.max_inflight None;
      live_cache = [];
      live_dirty = false;
      next_seq = 0;
      next_gen = 0;
      fetch = Fidle;
      events = Event_queue.create ();
      cycle = 0;
      ready = Array.init Grid.num_tiles (fun _ -> Queue.create ());
      ready_count = 0;
      halted = false;
      fault = None;
      obs;
      otrace = Obs.tracing obs;
      ofull = obs.Obs.full;
      oactive = Obs.active obs;
      ometrics = obs.Obs.metrics;
    }
  in
  List.iteri
    (fun i (name, _) ->
      Hashtbl.replace sim.block_addr name (Int64.of_int (i * 1024)))
    program.Program.blocks;
  match
    start_fetch sim program.Program.entry ~extra:0;
    while (not sim.halted) && sim.cycle < machine.Machine.max_cycles do
      (* events due now, in scheduling order *)
      (match Event_queue.pop_due sim.events ~cycle:sim.cycle with
      | [] -> ()
      | fs -> List.iter (fun f -> f ()) fs);
      step_issue sim;
      step_fetch sim;
      try_commit sim;
      if not sim.halted then begin
        match next_interesting_cycle sim with
        | c when c >= 0 -> sim.cycle <- max (sim.cycle + 1) c
        | _ ->
            if no_live_frames sim && sim.fetch = Fidle then
              failm "machine idle before halt"
            else if
              List.exists (fun f -> not f.complete) (live_frames sim)
              && Event_queue.is_empty sim.events
            then failm "deadlock at cycle %d" sim.cycle
            else sim.cycle <- sim.cycle + 1
      end
    done;
    if not sim.halted then Error (Printf.sprintf "watchdog: %d cycles" sim.cycle)
    else Ok sim.stats
  with
  | r -> r
  | exception Malformed m -> Error ("malformed: " ^ m)
  | exception Fault m -> Error ("fault: " ^ m)
