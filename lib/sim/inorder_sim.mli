(** The area-efficient in-order EDGE backend.

    Models the scalar end of the EDGE design space (Gray & Smith's
    soft-processor report): one centralized tile holds the whole block,
    ready instructions issue [issue_per_tile] per cycle from a window
    that admits only [window_size] in-flight firings, operands move
    through centralized register/memory structures with no operand
    network, and exactly one block is in flight (no speculation: a
    correct exit prediction saves the [predict_cycles] redirect bubble
    between blocks; a mispredict or a cold predictor pays it).

    Architectural semantics are not modeled here at all: every block is
    executed by {!Functional.Engine}, the functional simulator's own
    per-block engine, and the timing layer charges cycles for the
    firings that engine performed. Results therefore cannot diverge
    from the functional simulator; only cycle counts are this module's
    own. *)

val revision : string
(** Bumped whenever the timing model or [Stats] accounting changes; the
    persistent result cache folds it into its keys. *)

val run :
  ?machine:Machine.t ->
  ?obs:Edge_obs.Obs.t ->
  Edge_isa.Program.t ->
  regs:int64 array ->
  mem:Edge_isa.Mem.t ->
  (Stats.t, string) result
(** Runs until halt; the same contract as {!Cycle_sim.run} ([fault:],
    [malformed:], [watchdog:] errors; architectural state in
    [regs]/[mem]; cycles in the stats). [machine] defaults to
    {!Machine.inorder_edge}; only its timing fields and
    [issue_per_tile]/[window_size] are read — the backend is
    centralized regardless of the grid shape. *)
