(* A bucketed calendar queue for the cycle simulator's event wheel. *)

type 'a t = {
  buckets : (int * 'a) list array;  (* (seq, payload), newest first *)
  bucket_cycle : int array;  (* the cycle a non-empty bucket belongs to *)
  mask : int;
  mutable overflow : (int * int * 'a) list;  (* cycle, seq, payload *)
  mutable bucketed : int;
  mutable next_seq : int;
  mutable min_hint : int;  (* lower bound on every pending cycle *)
}

let horizon = 1024  (* power of two; > any default-machine event latency *)

let create () =
  {
    buckets = Array.make horizon [];
    bucket_cycle = Array.make horizon (-1);
    mask = horizon - 1;
    overflow = [];
    bucketed = 0;
    next_seq = 0;
    min_hint = 0;
  }

let is_empty t = t.bucketed = 0 && t.overflow == []

let add t ~cycle payload =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  if cycle < t.min_hint then t.min_hint <- cycle;
  let b = cycle land t.mask in
  if t.buckets.(b) == [] then begin
    t.buckets.(b) <- [ (seq, payload) ];
    t.bucket_cycle.(b) <- cycle;
    t.bucketed <- t.bucketed + 1
  end
  else if t.bucket_cycle.(b) = cycle then begin
    t.buckets.(b) <- (seq, payload) :: t.buckets.(b);
    t.bucketed <- t.bucketed + 1
  end
  else
    t.overflow <- (cycle, seq, payload) :: t.overflow

let rec merge_by_seq a b =
  match (a, b) with
  | [], l | l, [] -> l
  | ((sa, _) as ha) :: resta, ((sb, _) as hb) :: restb ->
      if sa < sb then ha :: merge_by_seq resta b
      else hb :: merge_by_seq a restb

let pop_due t ~cycle =
  let b = cycle land t.mask in
  let bucketed =
    if t.buckets.(b) != [] && t.bucket_cycle.(b) = cycle then begin
      let l = t.buckets.(b) in
      t.buckets.(b) <- [];
      t.bucket_cycle.(b) <- -1;
      t.bucketed <- t.bucketed - List.length l;
      List.rev l
    end
    else []
  in
  let overflowed =
    if t.overflow == [] then []
    else begin
      let due, later = List.partition (fun (c, _, _) -> c = cycle) t.overflow in
      t.overflow <- later;
      List.rev_map (fun (_, s, p) -> (s, p)) due
    end
  in
  if t.min_hint = cycle then t.min_hint <- cycle + 1;
  match (bucketed, overflowed) with
  | l, [] | [], l -> List.map snd l
  | a, b -> List.map snd (merge_by_seq a b)

let rec iter_snd_rev f = function
  | [] -> ()
  | (_, p) :: tl ->
      iter_snd_rev f tl;
      f p

let drain t ~cycle f =
  let b = cycle land t.mask in
  let bucketed =
    if t.buckets.(b) != [] && t.bucket_cycle.(b) = cycle then begin
      let l = t.buckets.(b) in
      t.buckets.(b) <- [];
      t.bucket_cycle.(b) <- -1;
      t.bucketed <- t.bucketed - List.length l;
      l
    end
    else []
  in
  let overflowed =
    if t.overflow == [] then []
    else begin
      let due, later = List.partition (fun (c, _, _) -> c = cycle) t.overflow in
      t.overflow <- later;
      List.rev_map (fun (_, s, p) -> (s, p)) due
    end
  in
  if t.min_hint = cycle then t.min_hint <- cycle + 1;
  match (bucketed, overflowed) with
  | l, [] -> iter_snd_rev f l
  | [], l -> List.iter (fun (_, p) -> f p) l
  | a, b -> List.iter (fun (_, p) -> f p) (merge_by_seq (List.rev a) b)

exception Found of int

let next_due t =
  if is_empty t then None
  else begin
    let best = ref max_int in
    (if t.bucketed > 0 then
       try
         for d = 0 to t.mask do
           let c = t.min_hint + d in
           let b = c land t.mask in
           if t.buckets.(b) != [] then begin
             let bc = t.bucket_cycle.(b) in
             if bc = c then raise (Found c)
             else if bc < !best then best := bc
           end
         done
       with Found c -> best := c);
    List.iter (fun (c, _, _) -> if c < !best then best := c) t.overflow;
    assert (!best < max_int);
    t.min_hint <- max t.min_hint !best;
    Some !best
  end
