type t = {
  history_mask : int;
  table_mask : int;
  mutable history : int;
  exit_table : int array;  (* predicted exit index per (block,history) *)
  btb : (int, string) Hashtbl.t;  (* (block, exit) -> target *)
  mutable mispredicts : int;
  mutable predictions : int;
}

let create ?(history_bits = 4) ?(table_bits = 12) () =
  {
    history_mask = (1 lsl history_bits) - 1;
    table_mask = (1 lsl table_bits) - 1;
    history = 0;
    exit_table = Array.make (1 lsl table_bits) 0;
    btb = Hashtbl.create 256;
    mispredicts = 0;
    predictions = 0;
  }

let block_hash block = Hashtbl.hash block

(* the [_hashed] variants take the precomputed [block_hash] so callers
   that decode blocks once (the cycle simulator's block images) skip
   rehashing the name on every fetch; same arithmetic, same tables *)
let index_h t h = (h lxor (t.history * 31)) land t.table_mask
let btb_key_h h exit_idx = (h * 37) + exit_idx

let predict_hashed t ~block_hash:h =
  let exit_idx = t.exit_table.(index_h t h) in
  Hashtbl.find_opt t.btb (btb_key_h h exit_idx)

let update_hashed t ~block_hash:h ~exit_idx ~target =
  t.exit_table.(index_h t h) <- exit_idx;
  Hashtbl.replace t.btb (btb_key_h h exit_idx) target;
  t.history <- ((t.history lsl 2) lor (exit_idx land 3)) land t.history_mask

let predict t ~block = predict_hashed t ~block_hash:(block_hash block)

let update t ~block ~exit_idx ~target =
  update_hashed t ~block_hash:(block_hash block) ~exit_idx ~target

let mispredicts t = t.mispredicts
let predictions t = t.predictions

let record_outcome t ~correct =
  t.predictions <- t.predictions + 1;
  if not correct then t.mispredicts <- t.mispredicts + 1
