(** Machine configuration for the simulators — a re-export of
    {!Edge_isa.Machine_desc}, kept under its historical name so
    simulator call sites read [Machine.default], [Machine.trips_grid],
    etc.

    The description lives in [Edge_isa] because the compiler's spatial
    scheduler ([Dfp.Schedule]) consumes the same geometry the simulators
    charge for; see {!Edge_isa.Machine_desc} for field documentation and
    the [trips_grid] / [inorder_edge] presets. *)

include module type of struct
  include Edge_isa.Machine_desc
end
