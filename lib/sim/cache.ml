type t = {
  sets : int;
  ways : int;
  line_bits : int;
  hit_latency : int;
  tags : int array array;  (* tags.(set).(way); -1 = invalid.  Line
                              numbers fit a native int (addresses are
                              well under 2^62), so tag compares are
                              unboxed *)
  lru : int array array;  (* larger = more recently used *)
  mutable clock : int;
}

let create ~size_bytes ~ways ~line_bytes ~hit_latency =
  let lines = size_bytes / line_bytes in
  let sets = max 1 (lines / ways) in
  let line_bits =
    let rec bits n acc = if n <= 1 then acc else bits (n / 2) (acc + 1) in
    bits line_bytes 0
  in
  {
    sets;
    ways;
    line_bits;
    hit_latency;
    tags = Array.init sets (fun _ -> Array.make ways (-1));
    lru = Array.init sets (fun _ -> Array.make ways 0);
    clock = 0;
  }

let hit_latency t = t.hit_latency

let access t ~addr ~write =
  ignore write;
  t.clock <- t.clock + 1;
  (* identical line numbering to the int64 formulation: a logical
     64-bit shift by line_bits >= 6 always fits a native int *)
  let line = Int64.to_int (Int64.shift_right_logical addr t.line_bits) in
  let set = line mod t.sets in
  let tags = t.tags.(set) and lru = t.lru.(set) in
  let hit = ref false in
  for w = 0 to t.ways - 1 do
    if tags.(w) = line then begin
      hit := true;
      lru.(w) <- t.clock
    end
  done;
  if not !hit then begin
    (* evict LRU way *)
    let victim = ref 0 in
    for w = 1 to t.ways - 1 do
      if lru.(w) < lru.(!victim) then victim := w
    done;
    tags.(!victim) <- line;
    lru.(!victim) <- t.clock
  end;
  !hit

let flush t =
  Array.iter (fun ways -> Array.fill ways 0 (Array.length ways) (-1)) t.tags
