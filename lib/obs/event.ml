(* Typed trace events.

   Every event carries the cycle it happened on plus enough identity to
   reconstruct the per-frame story: the block name and the dynamic
   sequence number [seq] of the frame (frames are re-used; [seq] is
   unique per dispatch). Fields are primitive (strings/ints/bools) so
   this library depends on nothing — the simulator does the conversion
   at emission time, behind its tracing guard. *)

type t =
  | Fetch of { cycle : int; block : string; penalty : int }
      (** block fetch started; [penalty] is the I-cache miss penalty *)
  | Dispatch of { cycle : int; block : string; seq : int; fid : int; instrs : int }
  | Wakeup of { cycle : int; block : string; seq : int; id : int; op : string }
      (** all operands + predicate available; entered a ready queue *)
  | Issue of { cycle : int; block : string; seq : int; id : int; op : string; tile : int }
      (** fired on its tile *)
  | Token of {
      cycle : int;
      block : string;
      seq : int;
      dst : string;  (** ["I5.L"], ["I5.R"], ["I5.P"], ["W2"] *)
      op : string;  (** opcode of the receiving instruction; ["-"] for writes *)
      null : bool;
      pred : bool;  (** delivered to a predicate slot *)
      matched : bool;  (** predicate slot only: polarity matched *)
    }
  | Read of { cycle : int; block : string; seq : int; rslot : int; reg : int }
      (** register read slot resolved (from an older frame or the RF) *)
  | Branch of {
      cycle : int;
      block : string;
      seq : int;
      target : string;
      mispredict : bool;
    }
  | Commit of {
      cycle : int;
      block : string;
      seq : int;
      instrs : int;  (** instructions executed by the frame *)
      nulls : int;  (** null tokens delivered to the frame *)
      orphans : int;  (** in-flight work abandoned by early termination *)
      occupancy : int;  (** cycles from dispatch to commit *)
    }
  | Squash of {
      cycle : int;
      block : string;
      seq : int;
      reason : string;  (** ["mispredict"] or ["violation"] *)
      orphans : int;
    }
  | Cache of { cycle : int; cache : string; write : bool; hit : bool }
      (** [cache] is ["l1i"], ["l1d"] or ["l2"] *)

let cycle = function
  | Fetch e -> e.cycle
  | Dispatch e -> e.cycle
  | Wakeup e -> e.cycle
  | Issue e -> e.cycle
  | Token e -> e.cycle
  | Read e -> e.cycle
  | Branch e -> e.cycle
  | Commit e -> e.cycle
  | Squash e -> e.cycle
  | Cache e -> e.cycle

(* One event, one line; fixed field order; no floats — byte-identical
   across runs and [-j] values, which is what the golden tests lock. *)
let to_line = function
  | Fetch { cycle; block; penalty } ->
      Printf.sprintf "%6d FETCH  %s pen=%d" cycle block penalty
  | Dispatch { cycle; block; seq; fid; instrs } ->
      Printf.sprintf "%6d DISP   %s seq=%d fid=%d n=%d" cycle block seq fid
        instrs
  | Wakeup { cycle; block; seq; id; op } ->
      Printf.sprintf "%6d WAKE   %s seq=%d I%d %s" cycle block seq id op
  | Issue { cycle; block; seq; id; op; tile } ->
      Printf.sprintf "%6d ISSUE  %s seq=%d I%d %s tile=%d" cycle block seq id
        op tile
  | Token { cycle; block; seq; dst; op; null; pred; matched } ->
      Printf.sprintf "%6d TOK    %s seq=%d %s%s%s%s" cycle block seq dst
        (if op = "-" then "" else " " ^ op)
        (if null then " null" else "")
        (if pred then (if matched then " pred+" else " pred-") else "")
  | Read { cycle; block; seq; rslot; reg } ->
      Printf.sprintf "%6d READ   %s seq=%d R%d g%d" cycle block seq rslot reg
  | Branch { cycle; block; seq; target; mispredict } ->
      Printf.sprintf "%6d BR     %s seq=%d -> %s%s" cycle block seq target
        (if mispredict then " MISPREDICT" else "")
  | Commit { cycle; block; seq; instrs; nulls; orphans; occupancy } ->
      Printf.sprintf "%6d COMMIT %s seq=%d instrs=%d nulls=%d orphans=%d occ=%d"
        cycle block seq instrs nulls orphans occupancy
  | Squash { cycle; block; seq; reason; orphans } ->
      Printf.sprintf "%6d SQUASH %s seq=%d %s orphans=%d" cycle block seq
        reason orphans
  | Cache { cycle; cache; write; hit } ->
      Printf.sprintf "%6d CACHE  %s %s %s" cycle cache
        (if write then "wr" else "rd")
        (if hit then "hit" else "miss")
