(* A registry of named counters and integer-valued histograms.

   Counters accumulate totals ("sim.instrs_committed",
   "opt_merge.instrs_merged"); histograms record one sample per
   observation ("block.occupancy" gets one sample per committed block).
   Everything renders deterministically: names sorted, histogram buckets
   sorted by value. *)

type t = {
  counters : (string, int ref) Hashtbl.t;
  hists : (string, (int, int ref) Hashtbl.t) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 32; hists = Hashtbl.create 16 }

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let observe t name v =
  let h =
    match Hashtbl.find_opt t.hists name with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 16 in
        Hashtbl.replace t.hists name h;
        h
  in
  match Hashtbl.find_opt h v with
  | Some r -> Stdlib.incr r
  | None -> Hashtbl.replace h v (ref 1)

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let histogram t name =
  match Hashtbl.find_opt t.hists name with
  | None -> []
  | Some h ->
      Hashtbl.fold (fun v r acc -> (v, !r) :: acc) h []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let histograms t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.hists []
  |> List.sort String.compare
  |> List.map (fun k -> (k, histogram t k))

let hist_total samples = List.fold_left (fun a (_, c) -> a + c) 0 samples

let hist_sum samples = List.fold_left (fun a (v, c) -> a + (v * c)) 0 samples

let merge ~into src =
  Hashtbl.iter (fun k r -> incr ~by:!r into k) src.counters;
  Hashtbl.iter
    (fun name h ->
      let dst =
        match Hashtbl.find_opt into.hists name with
        | Some d -> d
        | None ->
            let d = Hashtbl.create 16 in
            Hashtbl.replace into.hists name d;
            d
      in
      Hashtbl.iter
        (fun v r ->
          match Hashtbl.find_opt dst v with
          | Some dr -> dr := !dr + !r
          | None -> Hashtbl.replace dst v (ref !r))
        h)
    src.hists

let pp_summary ppf t =
  let open Format in
  fprintf ppf "@[<v>";
  (match counters t with
  | [] -> ()
  | cs ->
      fprintf ppf "counters:@,";
      List.iter (fun (k, v) -> fprintf ppf "  %-36s %10d@," k v) cs);
  (match histograms t with
  | [] -> ()
  | hs ->
      fprintf ppf "histograms:@,";
      List.iter
        (fun (k, samples) ->
          let n = hist_total samples in
          let sum = hist_sum samples in
          let vmin = match samples with (v, _) :: _ -> v | [] -> 0 in
          let vmax =
            match List.rev samples with (v, _) :: _ -> v | [] -> 0
          in
          fprintf ppf "  %-36s n=%d sum=%d min=%d max=%d@," k n sum vmin vmax;
          List.iter (fun (v, c) -> fprintf ppf "    %8d x%d@," v c) samples)
        hs);
  fprintf ppf "@]"
