(* A minimal JSON well-formedness checker (no value construction), used
   by `make trace-smoke` and the tests to prove that the Chrome
   trace-event files we emit actually parse. Accepts strict RFC 8259
   JSON; returns the byte offset of the first error. *)

type error = { offset : int; message : string }

let check (s : string) : (unit, error) result =
  let n = String.length s in
  let pos = ref 0 in
  let exception Bad of error in
  let fail msg = raise (Bad { offset = !pos; message = msg }) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, got %c" c c')
    | None -> fail (Printf.sprintf "expected %c, got end of input" c)
  in
  let hex_digit c =
    match c with '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false
  in
  let string_lit () =
    expect '"';
    let closed = ref false in
    while not !closed do
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance (); closed := true
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some c when hex_digit c -> advance ()
                | _ -> fail "bad \\u escape"
              done
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control character in string"
      | Some _ -> advance ()
    done
  in
  let number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    (match peek () with
    | Some '0' -> advance ()
    | Some '1' .. '9' ->
        while (match peek () with Some '0' .. '9' -> true | _ -> false) do
          advance ()
        done
    | _ -> fail "bad number");
    (match peek () with
    | Some '.' ->
        advance ();
        (match peek () with
        | Some '0' .. '9' -> ()
        | _ -> fail "bad fraction");
        while (match peek () with Some '0' .. '9' -> true | _ -> false) do
          advance ()
        done
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        (match peek () with
        | Some '0' .. '9' -> ()
        | _ -> fail "bad exponent");
        while (match peek () with Some '0' .. '9' -> true | _ -> false) do
          advance ()
        done
    | _ -> ()
  in
  let literal lit =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit
    then pos := !pos + String.length lit
    else fail ("expected " ^ lit)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '"' -> string_lit ()
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else begin
          let more = ref true in
          while !more do
            skip_ws ();
            string_lit ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some '}' -> advance (); more := false
            | _ -> fail "expected , or } in object"
          done
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else begin
          let more = ref true in
          while !more do
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some ']' -> advance (); more := false
            | _ -> fail "expected , or ] in array"
          done
        end
    | Some ('t' | 'f') -> if s.[!pos] = 't' then literal "true" else literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
    | None -> fail "unexpected end of input"
  in
  match
    value ();
    skip_ws ();
    if !pos <> n then fail "trailing garbage"
  with
  | () -> Ok ()
  | exception Bad e -> Error e
