(* The observability bundle threaded through the simulator and compiler:
   an optional trace sink plus an optional metrics registry.

   [null] is the default everywhere. The simulator guards every emission
   site on [tracing]/[active], so with [null] the per-cycle cost is a
   couple of branch-on-immediate tests — the `make check` sweep must stay
   within noise of an uninstrumented build. *)

type t = {
  sink : Trace.sink option;
  full : bool;  (** instruction/token/cache-level events, not just blocks *)
  metrics : Metrics.t option;
}

let null = { sink = None; full = false; metrics = None }

let tracing t = t.sink <> None

let active t = t.sink <> None || t.metrics <> None

let emit t e = match t.sink with Some f -> f e | None -> ()

let make ?(level = Trace.Full) ?metrics ?sink () =
  { sink; full = (level = Trace.Full); metrics }

(* an Obs collecting events in memory; returns the bundle, the event
   fetcher and the registry *)
let collector ?(level = Trace.Full) () =
  let sink, events = Trace.collector () in
  let metrics = Metrics.create () in
  ( { sink = Some sink; full = (level = Trace.Full); metrics = Some metrics },
    events,
    metrics )
