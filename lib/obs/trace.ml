(* Trace sinks and exporters.

   A sink is just a callback; the simulator never sees how events are
   consumed. The in-memory collector preserves emission order, which is
   deterministic because each simulation runs single-threaded — the
   golden tests compare the rendered bytes across [-j] values to lock
   that down. *)

type level = Blocks | Full

type sink = Event.t -> unit

let collector () =
  let events = ref [] in
  let emit e = events := e :: !events in
  (emit, fun () -> List.rev !events)

(* ---------- compact deterministic text ---------- *)

let render_text ?(header = []) events =
  let b = Buffer.create 4096 in
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "# %s: %s\n" k v))
    header;
  List.iter
    (fun e ->
      Buffer.add_string b (Event.to_line e);
      Buffer.add_char b '\n')
    events;
  Buffer.contents b

(* first line where two rendered traces diverge, for readable test
   failures *)
let first_divergence a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go n = function
    | [], [] -> None
    | x :: _, [] -> Some (n, x, "<end of golden>")
    | [], y :: _ -> Some (n, "<end of trace>", y)
    | x :: xs, y :: ys -> if String.equal x y then go (n + 1) (xs, ys) else Some (n, x, y)
  in
  go 1 (la, lb)

(* ---------- Chrome trace-event JSON (Perfetto / chrome://tracing) ----------

   Block frames become duration ("X") events laid out one row (tid) per
   frame slot; instruction issues, token deliveries, mispredicts and
   cache misses become instant ("i") events. Cycles are reported as
   microseconds — Perfetto has no notion of cycles, and 1 cycle = 1 us
   keeps the timeline readable. *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_chrome ?(pid = 0) ?name buf events =
  let first = ref true in
  let item fmt =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf "  ";
    Printf.ksprintf (Buffer.add_string buf) fmt
  in
  (match name with
  | Some n ->
      item
        "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\",\"args\":{\"name\":\"%s\"}}"
        pid (json_escape n)
  | None -> ());
  (* open frames: seq -> (block, fid, dispatch cycle) *)
  let open_frames = Hashtbl.create 16 in
  let close_frame ~seq ~cycle ~phase ~extra =
    match Hashtbl.find_opt open_frames seq with
    | None -> ()
    | Some (block, fid, t0) ->
        Hashtbl.remove open_frames seq;
        item
          "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"name\":\"%s\",\"args\":{\"seq\":%d,\"end\":\"%s\"%s}}"
          pid fid t0
          (max 1 (cycle - t0))
          (json_escape block) seq phase extra
  in
  let instant ~cycle ~tid ~nm ~extra =
    item
      "{\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,\"ts\":%d,\"name\":\"%s\"%s}"
      pid tid cycle (json_escape nm) extra
  in
  List.iter
    (fun (e : Event.t) ->
      match e with
      | Event.Dispatch { cycle; block; seq; fid; _ } ->
          Hashtbl.replace open_frames seq (block, fid, cycle)
      | Event.Commit { cycle; seq; instrs; orphans; _ } ->
          close_frame ~seq ~cycle ~phase:"commit"
            ~extra:
              (Printf.sprintf ",\"instrs\":%d,\"orphans\":%d" instrs orphans)
      | Event.Squash { cycle; seq; reason; orphans; _ } ->
          close_frame ~seq ~cycle ~phase:reason
            ~extra:(Printf.sprintf ",\"orphans\":%d" orphans)
      | Event.Branch { cycle; block; seq; target; mispredict } ->
          if mispredict then
            instant ~cycle ~tid:90 ~nm:("mispredict " ^ block)
              ~extra:
                (Printf.sprintf ",\"args\":{\"seq\":%d,\"target\":\"%s\"}" seq
                   (json_escape target))
      | Event.Issue { cycle; block; seq; id; op; tile } ->
          instant ~cycle ~tid:(100 + tile) ~nm:op
            ~extra:
              (Printf.sprintf
                 ",\"args\":{\"block\":\"%s\",\"seq\":%d,\"id\":%d}"
                 (json_escape block) seq id)
      | Event.Token { cycle; seq; dst; null; pred; _ } ->
          if null || pred then
            instant ~cycle ~tid:91
              ~nm:(if null then "null->" ^ dst else "pred->" ^ dst)
              ~extra:(Printf.sprintf ",\"args\":{\"seq\":%d}" seq)
      | Event.Cache { cycle; cache; write; hit } ->
          if not hit then
            instant ~cycle ~tid:92
              ~nm:(cache ^ (if write then " wr miss" else " rd miss"))
              ~extra:""
      | Event.Fetch _ | Event.Wakeup _ | Event.Read _ -> ())
    events;
  (* frames still open at the end of the trace (e.g. after a fault) *)
  let still_open =
    Hashtbl.fold (fun seq v acc -> (seq, v) :: acc) open_frames []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  List.iter
    (fun (seq, (_, _, t0)) ->
      close_frame ~seq ~cycle:(t0 + 1) ~phase:"open" ~extra:"")
    still_open

let chrome_to_string ?pid ?name events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  write_chrome ?pid ?name buf events;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf
