(* Entry points for the per-pass static verifier, plus the global
   enablement switch.

   The checker is off by default for plain builds (it costs compile
   time) and turned on by:
     - the DFP_CHECK environment variable (1/true/yes/on),
     - [set_enabled true] (the --check flags on bin/tsim, bin/fuzz,
       bin/experiments and bench/main, and the test suite),
     - explicitly passing ~check:true to Driver.compile_cfg (the fuzz
       oracle does, so differential fuzzing always runs it). *)

module Hb = Edge_ir.Hblock
module Tac = Edge_ir.Tac
module Temp = Edge_ir.Temp
module Label = Edge_ir.Label
module Cfg = Edge_ir.Cfg

let forced : bool option ref = ref None

let env_enabled () =
  match Sys.getenv_opt "DFP_CHECK" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | Some _ | None -> false

let enabled () = match !forced with Some b -> b | None -> env_enabled ()
let set_enabled b = forced := Some b

(* Run [f] with the checker forced off — bin/tsim uses this to
   recompile a failing program so the offending block's trace can be
   captured alongside the diagnostic. *)
let without_check f =
  let saved = !forced in
  forced := Some false;
  Fun.protect ~finally:(fun () -> forced := saved) f

(* ---- per-layer checks ---- *)

type result = { diags : Diag.t list; skipped : int }

let empty = { diags = []; skipped = 0 }

let merge a b = { diags = a.diags @ b.diags; skipped = a.skipped + b.skipped }

let of_outcome = function
  | Block_check.Clean -> empty
  | Block_check.Skipped _ -> { diags = []; skipped = 1 }
  | Block_check.Diags ds -> { diags = ds; skipped = 0 }

let of_houtcome = function
  | Hblock_check.Clean -> empty
  | Hblock_check.Skipped _ -> { diags = []; skipped = 1 }
  | Hblock_check.Diags ds -> { diags = ds; skipped = 0 }

let hblocks ~pass (hs : Hb.t list) : result =
  List.fold_left
    (fun acc h -> merge acc (of_houtcome (Hblock_check.check ~pass h)))
    empty hs

let block ~pass (b : Edge_isa.Block.t) : result =
  of_outcome (Block_check.check ~pass b)

let program ?(pass = "codegen") (p : Edge_isa.Program.t) : result =
  List.fold_left
    (fun acc (_, b) -> merge acc (block ~pass b))
    empty p.Edge_isa.Program.blocks

(* CFG sanity after the classic optimizer: SSA fully destructed, the
   block graph closed, every use defined somewhere (or a parameter) *)
let cfg ~pass (c : Cfg.t) : result =
  let diags = ref [] in
  let add ~block ~where invariant msg =
    diags := Diag.make ~pass ~block ~where invariant msg :: !diags
  in
  let defined = ref (Temp.Set.of_list c.Cfg.params) in
  Label.Map.iter
    (fun _ (b : Cfg.bblock) ->
      List.iter
        (fun i ->
          match Tac.def i with
          | Some d -> defined := Temp.Set.add d !defined
          | None -> ())
        b.Cfg.instrs)
    c.Cfg.blocks;
  Label.Map.iter
    (fun label (b : Cfg.bblock) ->
      List.iteri
        (fun idx i ->
          (match i with
          | Tac.Phi _ ->
              add ~block:label
                ~where:(Printf.sprintf "I%d" idx)
                Diag.Structure "phi survives SSA destruction"
          | _ -> ());
          List.iter
            (fun u ->
              if not (Temp.Set.mem u !defined) then
                add ~block:label
                  ~where:(Printf.sprintf "I%d" idx)
                  Diag.Def_use
                  (Format.asprintf "use of undefined temp %a" Temp.pp u))
            (Tac.uses i))
        b.Cfg.instrs;
      List.iter
        (fun u ->
          if not (Temp.Set.mem u !defined) then
            add ~block:label ~where:"term" Diag.Def_use
              (Format.asprintf "use of undefined temp %a" Temp.pp u))
        (Tac.term_uses b.Cfg.term);
      List.iter
        (fun s ->
          if not (Label.Map.mem s c.Cfg.blocks) then
            add ~block:label ~where:"term" Diag.Structure
              (Format.asprintf "terminator targets unknown block %a" Label.pp
                 s))
        (Tac.term_succs b.Cfg.term))
    c.Cfg.blocks;
  { diags = List.rev !diags; skipped = 0 }

(* register allocation: every live temp carries a register; within a
   block's live-in and live-out sets, registers are pairwise distinct *)
let alloc ~pass ~block ~(reg_of : Temp.t -> int option)
    ~(live_in : Temp.Set.t) ~(live_out : Temp.Set.t) : result =
  let diags = ref [] in
  let add where msg =
    diags := Diag.make ~pass ~block ~where Diag.Alloc msg :: !diags
  in
  let check_set what set =
    let seen : (int, Temp.t) Hashtbl.t = Hashtbl.create 16 in
    Temp.Set.iter
      (fun t ->
        match reg_of t with
        | None ->
            add
              (Format.asprintf "%a" Temp.pp t)
              (Format.asprintf "%s temp %a has no register" what Temp.pp t)
        | Some r -> (
            match Hashtbl.find_opt seen r with
            | Some t' ->
                add
                  (Format.asprintf "%a" Temp.pp t)
                  (Format.asprintf "%s temps %a and %a share register g%d" what
                     Temp.pp t' Temp.pp t r)
            | None -> Hashtbl.replace seen r t))
      set
  in
  check_set "live-in" live_in;
  check_set "live-out" live_out;
  { diags = List.rev !diags; skipped = 0 }

(* schedule placement: one tile per instruction, all in range for the
   machine the schedule was computed against *)
let placement ?(machine = Edge_isa.Machine_desc.default) ~pass
    (b : Edge_isa.Block.t) (p : int array) : result =
  let num_tiles = Edge_isa.Machine_desc.num_tiles machine in
  let diags = ref [] in
  let add where msg =
    diags :=
      Diag.make ~pass ~block:b.Edge_isa.Block.name ~where Diag.Placement msg
      :: !diags
  in
  let n = Array.length b.Edge_isa.Block.instrs in
  if Array.length p <> n then
    add "-"
      (Printf.sprintf "placement has %d entries for %d instructions"
         (Array.length p) n);
  Array.iteri
    (fun i tile ->
      if tile < 0 || tile >= num_tiles then
        add
          (Printf.sprintf "I%d" i)
          (Printf.sprintf "I%d placed on tile %d (grid has %d)" i tile
             num_tiles))
    p;
  { diags = List.rev !diags; skipped = 0 }

(* render a result as a driver error message: the first diagnostic,
   with the rest counted so nothing is silently dropped *)
let to_error (r : result) : string option =
  match r.diags with
  | [] -> None
  | [ d ] -> Some (Diag.to_string d)
  | d :: rest ->
      Some
        (Printf.sprintf "%s (+%d more diagnostics)" (Diag.to_string d)
           (List.length rest))
