(* The polynomial-time invariant checker for encoded blocks.

   Where the fuzz validator's enumerator walks all 2^k assignments of a
   block's predicate variables (capped at 11), this checker evaluates
   the same dataflow symbolically over a three-valued predicate lattice
   (true / false / underivable) whose regions are BDDs over exactly the
   enumerator's variables ([Edge_ir.Gate]).  For every producer we
   compute three characteristic formulas:

     F(p)   — the assignments on which p eventually fires,
     vt/vu  — the assignments on which its token's boolean value is
              true, resp. underivable (elsewhere it is false),
     N(p)   — the assignments on which its token is a null.

   A least fixpoint of the firing equations (mirroring the event-driven
   executor: predicate matching, sand short-circuit, LSID-ordered
   loads, null-resolved stores) then turns each path-enumeration check
   into a satisfiability question on one BDD:

     - predicate polarity: sat(F(p) ∧ vu(p)) for a predicate producer
       means some path delivers an underivable predicate;
     - predicate-OR disjointness: two match regions intersect;
     - single delivery: two producer fire regions of one operand or
       write slot intersect;
     - output completeness: the union of delivery regions for a write
       slot, store LSID, or the branch set is not the whole space;
     - exactly-one-branch: branch fire regions pairwise disjoint and
       jointly total.

   BDD sizes are bounded by a node budget; exceeding it (or a
   non-converging fixpoint, which the pointwise-monotone equations
   should never produce) yields [Skipped], never a diagnostic.

   One deliberate strictness: the enumerator only reports a null
   arriving at an *already fired* store (delivery order decides), while
   this checker flags any overlap between a store's real-fire and
   null-resolve regions.  The compiler never emits order-dependent
   store resolution, so this is a superset on buggy code and agrees on
   everything the pipeline produces. *)

module B = Edge_isa.Block
module I = Edge_isa.Instr
module O = Edge_isa.Opcode
module T = Edge_isa.Target
module E = Edge_isa.Encode
module Bdd = Edge_ir.Bdd
module Gate = Edge_ir.Gate

type outcome = Clean | Skipped of string | Diags of Diag.t list

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* anchor a validator message to its instruction/output when it leads
   with the conventional "I3:", "W0:", "R1:" prefix *)
let where_of_message msg =
  match String.index_opt msg ':' with
  | Some i when i > 1 && i < 6 -> (
      let head = String.sub msg 0 i in
      match head.[0] with
      | 'I' | 'W' | 'R' | 'S' ->
          if String.for_all (fun c -> c >= '0' && c <= '9')
               (String.sub head 1 (String.length head - 1))
          then head
          else "-"
      | _ -> "-")
  | _ -> "-"

let classify_structural msg =
  if contains msg "lsid" then Diag.Lsid
  else if contains msg "mov4" then Diag.Fanout
  else Diag.Structure

let classify_encoding msg =
  if contains msg "mov4" then Diag.Fanout else Diag.Encode

(* structural and encodability checks, classified into invariants;
   mirrors the fuzz validator's structural tier so the checker is
   self-contained (lib/check cannot depend on lib/fuzz) *)
let structural_diags ~pass (b : B.t) : Diag.t list =
  let diags = ref [] in
  let add where invariant msg =
    diags := Diag.make ~pass ~block:b.B.name ~where invariant msg :: !diags
  in
  (match B.validate b with
  | Ok () -> ()
  | Error es ->
      List.iter
        (fun msg -> add (where_of_message msg) (classify_structural msg) msg)
        es);
  (* the reserved-target rule, with a clear message *)
  Array.iter
    (fun (i : I.t) ->
      List.iter
        (function
          | T.To_instr { id = 0; slot = T.Left } ->
              add
                (Printf.sprintf "I%d" i.I.id)
                Diag.Encode
                (Printf.sprintf
                   "I%d targets I0's left operand (encodes as no-target)"
                   i.I.id)
          | _ -> ())
        i.I.targets)
    b.B.instrs;
  (match E.encode_block_body b.B.instrs with
  | Error e -> add "-" (classify_encoding e) ("encode: " ^ e)
  | Ok words -> (
      match E.decode_block_body words with
      | Error e -> add "-" (classify_encoding e) ("decode: " ^ e)
      | Ok instrs' ->
          if Array.length instrs' <> Array.length b.B.instrs then
            add "-" Diag.Encode
              (Printf.sprintf "round trip changed instruction count: %d -> %d"
                 (Array.length b.B.instrs) (Array.length instrs'))
          else
            Array.iteri
              (fun idx (orig : I.t) ->
                if not (I.equal orig instrs'.(idx)) then
                  add
                    (Printf.sprintf "I%d" idx)
                    Diag.Encode
                    (Format.asprintf "I%d does not round-trip: %a <> %a" idx
                       I.pp orig I.pp instrs'.(idx)))
              b.B.instrs));
  List.rev !diags

(* ---------- symbolic gating analysis ---------- *)

type source = Si of int | Sr of int  (* instruction id / read slot *)

let symbolic_diags ~pass (b : B.t) : outcome =
  let n = Array.length b.B.instrs in
  let nr = Array.length b.B.reads in
  let rel = Gate.boolean_relevant b in
  let names, var_of, _k = Gate.variables b rel in
  let names_arr = Array.of_list names in
  let m = Bdd.create () in
  let src_idx = function Si i -> i | Sr r -> n + r in
  (* producer tables, one entry per target occurrence (a duplicated
     target is two deliveries, as in the hardware) *)
  let data_prods : (int * T.slot, source list) Hashtbl.t = Hashtbl.create 64 in
  let pred_prods : (int, source list) Hashtbl.t = Hashtbl.create 16 in
  let write_prods : (int, source list) Hashtbl.t = Hashtbl.create 16 in
  let push tbl key v =
    Hashtbl.replace tbl key
      (v :: Option.value ~default:[] (Hashtbl.find_opt tbl key))
  in
  let scan source targets =
    List.iter
      (function
        | T.To_instr { id; slot = T.Pred } -> push pred_prods id source
        | T.To_instr { id; slot } -> push data_prods (id, slot) source
        | T.To_write w -> push write_prods w source)
      targets
  in
  Array.iter (fun (i : I.t) -> scan (Si i.I.id) i.I.targets) b.B.instrs;
  Array.iteri (fun r (rd : B.read) -> scan (Sr r) rd.B.rtargets) b.B.reads;
  (* per-producer state, indexed by src_idx *)
  let f = Array.make (n + nr) Bdd.False in
  let vt = Array.make (n + nr) Bdd.False in
  let vu = Array.make (n + nr) Bdd.False in
  let nl = Array.make (n + nr) Bdd.False in
  (* fixed value of an enumeration-variable or constant source; [None]
     for derived sources whose value the fixpoint computes *)
  let fixed_value idx =
    match Hashtbl.find_opt var_of idx with
    | Some (pos, negated) ->
        Some ((if negated then Bdd.nvar m pos else Bdd.var m pos), Bdd.False)
    | None ->
        if idx < n then
          match Gate.const_parity b.B.instrs.(idx) with
          | Some true -> Some (Bdd.True, Bdd.False)
          | Some false -> Some (Bdd.False, Bdd.False)
          | None -> None
        else None
  in
  (* reads fire unconditionally *)
  Array.iteri
    (fun r _ ->
      let idx = n + r in
      f.(idx) <- Bdd.True;
      match fixed_value idx with
      | Some (t, u) ->
          vt.(idx) <- t;
          vu.(idx) <- u
      | None -> vu.(idx) <- Bdd.True)
    b.B.reads;
  let prods_of tbl key = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
  let is_store id =
    match b.B.instrs.(id).I.opcode with O.St _ -> true | _ -> false
  in
  (* delivery events at a data operand: a null reaching a store operand
     is a store-resolution event, not an operand arrival *)
  let deliveries (id, slot) =
    List.map
      (fun p ->
        let i = src_idx p in
        if is_store id then Bdd.conj m f.(i) (Bdd.neg m nl.(i)) else f.(i))
      (prods_of data_prods (id, slot))
  in
  let arrive key = Bdd.disj_list m (deliveries key) in
  let agg g key =
    Bdd.disj_list m
      (List.map
         (fun p ->
           let i = src_idx p in
           Bdd.conj m f.(i) (g i))
         (prods_of data_prods key))
  in
  let op_vt key = agg (fun i -> vt.(i)) key in
  let op_vu key = agg (fun i -> vu.(i)) key in
  let op_nl key = agg (fun i -> nl.(i)) key in
  let op_false key =
    agg (fun i -> Bdd.conj m (Bdd.neg m vt.(i)) (Bdd.neg m vu.(i))) key
  in
  let pred_ok (i : I.t) =
    if not (I.is_predicated i) then Bdd.True
    else
      Bdd.disj_list m
        (List.map
           (fun p ->
             let pi = src_idx p in
             let matches =
               match i.I.pred with
               | I.If_true -> Bdd.conj m vt.(pi) (Bdd.neg m vu.(pi))
               | I.If_false ->
                   Bdd.conj m (Bdd.neg m vt.(pi)) (Bdd.neg m vu.(pi))
               | I.Unpredicated -> Bdd.False
             in
             Bdd.conj m f.(pi) matches)
           (prods_of pred_prods i.I.id))
  in
  (* a store's real fire (both operands arrive non-null, predicate ok) *)
  let store_fire id = f.(id) in
  (* null deliveries that resolve store [id]'s lsid *)
  let store_null_events id =
    List.concat_map
      (fun slot ->
        List.filter_map
          (fun p ->
            let i = src_idx p in
            let e = Bdd.conj m f.(i) nl.(i) in
            if Bdd.is_false e then None else Some e)
          (prods_of data_prods (id, slot)))
      [ T.Left; T.Right ]
  in
  let resolved lsid =
    let events = ref [] in
    Array.iter
      (fun (i : I.t) ->
        match i.I.opcode with
        | O.St _ when i.I.lsid = lsid ->
            events := store_fire i.I.id :: store_null_events i.I.id @ !events
        | _ -> ())
      b.B.instrs;
    Bdd.disj_list m !events
  in
  let step (i : I.t) =
    let id = i.I.id in
    let pok = pred_ok i in
    let left = (id, T.Left) and right = (id, T.Right) in
    let fire =
      match i.I.opcode with
      | O.Sand ->
          Bdd.conj m pok
            (Bdd.conj m (arrive left)
               (Bdd.disj m (op_false left) (arrive right)))
      | O.St _ -> Bdd.conj m pok (Bdd.conj m (arrive left) (arrive right))
      | O.Ld _ ->
          let lower =
            List.filter (fun l -> l < i.I.lsid) b.B.store_lsids
            |> List.map resolved |> Bdd.conj_list m
          in
          Bdd.conj m pok (Bdd.conj m (arrive left) lower)
      | op ->
          let arity = O.num_operands op in
          let a = if arity >= 1 then arrive left else Bdd.True in
          let b' = if arity >= 2 then arrive right else Bdd.True in
          Bdd.conj m pok (Bdd.conj m a b')
    in
    f.(id) <- fire;
    match fixed_value id with
    | Some (t, u) ->
        vt.(id) <- t;
        vu.(id) <- u
    | None -> (
        match i.I.opcode with
        | O.Null ->
            (* a null carries value false and the null mark *)
            nl.(id) <- Bdd.True
        | O.Un O.Mov | O.Mov4 | O.Un O.Neg ->
            vt.(id) <- op_vt left;
            vu.(id) <- op_vu left;
            nl.(id) <- op_nl left
        | O.Un O.Not ->
            vt.(id) <- op_false left;
            vu.(id) <- op_vu left;
            nl.(id) <- op_nl left
        | O.Sand ->
            let ta = Bdd.conj m (op_vt left) (Bdd.neg m (op_vu left)) in
            vt.(id) <- Bdd.conj m ta (op_vt right);
            vu.(id) <- Bdd.disj m (op_vu left) (Bdd.conj m ta (op_vu right));
            nl.(id) <- op_nl left
        | _ ->
            (* a source the enumerator would call underivable *)
            vu.(id) <- Bdd.True)
  in
  let snapshot () =
    Array.append (Array.map Bdd.uid f)
      (Array.append (Array.map Bdd.uid vt)
         (Array.append (Array.map Bdd.uid vu) (Array.map Bdd.uid nl)))
  in
  let max_rounds = (2 * (n + nr)) + 16 in
  let rec iterate round prev =
    if round > max_rounds then Error "fixpoint did not converge"
    else begin
      Array.iter step b.B.instrs;
      let cur = snapshot () in
      if cur = prev then Ok () else iterate (round + 1) cur
    end
  in
  match iterate 0 (snapshot ()) with
  | exception Bdd.Budget -> Skipped "BDD node budget exceeded"
  | Error e -> Skipped e
  | Ok () -> (
      try
        let diags = ref [] in
        let add where invariant msg =
          diags :=
            Diag.make ~pass ~block:b.B.name ~where invariant msg :: !diags
        in
        let witness cond =
          match Bdd.any_sat cond with
          | None | Some [] -> ""
          | Some pairs ->
              Printf.sprintf " on path [%s]"
                (String.concat " "
                   (List.map
                      (fun (v, value) ->
                        Printf.sprintf "%s=%d" names_arr.(v)
                          (if value then 1 else 0))
                      pairs))
        in
        (* pairwise intersection over delivery events *)
        let pairwise events on_clash =
          let rec go = function
            | [] -> ()
            | e :: rest ->
                List.iter
                  (fun e' ->
                    let both = Bdd.conj m e e' in
                    if Bdd.sat both then on_clash both)
                  rest;
                go rest
          in
          go events
        in
        let covered events where invariant what =
          let missing = Bdd.neg m (Bdd.disj_list m events) in
          if Bdd.sat missing then
            add where invariant
              (Printf.sprintf "%s starves%s" what (witness missing))
        in
        (* predicate polarity: no underivable value may reach a
           predicate slot *)
        Hashtbl.iter
          (fun id prods ->
            List.iter
              (fun p ->
                let pi = src_idx p in
                let bad = Bdd.conj m f.(pi) vu.(pi) in
                if Bdd.sat bad then
                  add
                    (Printf.sprintf "I%d" id)
                    Diag.Polarity
                    (Printf.sprintf
                       "I%d: predicate arrives with underivable value%s" id
                       (witness bad)))
              prods)
          pred_prods;
        (* predicate-OR disjointness *)
        Array.iter
          (fun (i : I.t) ->
            if I.is_predicated i then
              let matches =
                List.map
                  (fun p ->
                    let pi = src_idx p in
                    let pol =
                      match i.I.pred with
                      | I.If_true -> Bdd.conj m vt.(pi) (Bdd.neg m vu.(pi))
                      | _ -> Bdd.conj m (Bdd.neg m vt.(pi)) (Bdd.neg m vu.(pi))
                    in
                    Bdd.conj m f.(pi) pol)
                  (prods_of pred_prods i.I.id)
              in
              pairwise matches (fun both ->
                  add
                    (Printf.sprintf "I%d" i.I.id)
                    Diag.Pred_or
                    (Printf.sprintf "I%d: two matching predicates%s" i.I.id
                       (witness both))))
          b.B.instrs;
        (* single delivery per data operand *)
        Array.iter
          (fun (i : I.t) ->
            List.iter
              (fun slot ->
                pairwise
                  (deliveries (i.I.id, slot))
                  (fun both ->
                    add
                      (Printf.sprintf "I%d" i.I.id)
                      Diag.Double_delivery
                      (Format.asprintf "I%d: operand %a delivered twice%s"
                         i.I.id T.pp_slot slot (witness both))))
              [ T.Left; T.Right ])
          b.B.instrs;
        (* write slots: exactly one token each *)
        Array.iteri
          (fun w _ ->
            let events =
              List.map
                (fun p -> f.(src_idx p))
                (prods_of write_prods w)
            in
            let where = Printf.sprintf "W%d" w in
            pairwise events (fun both ->
                add where Diag.Double_delivery
                  (Printf.sprintf "write slot %d received two tokens%s" w
                     (witness both)));
            covered events where Diag.Output_completeness
              (Printf.sprintf "write slot %d" w))
          b.B.writes;
        (* store LSIDs: resolved exactly once *)
        List.iter
          (fun lsid ->
            let events = ref [] in
            Array.iter
              (fun (i : I.t) ->
                match i.I.opcode with
                | O.St _ when i.I.lsid = lsid ->
                    events :=
                      (store_fire i.I.id :: store_null_events i.I.id) @ !events
                | _ -> ())
              b.B.instrs;
            let where = Printf.sprintf "S%d" lsid in
            pairwise !events (fun both ->
                add where Diag.Lsid
                  (Printf.sprintf "store lsid %d resolved twice%s" lsid
                     (witness both)));
            covered !events where Diag.Output_completeness
              (Printf.sprintf "store lsid %d" lsid))
          b.B.store_lsids;
        (* exactly one branch *)
        let branch_fires =
          Array.to_list b.B.instrs
          |> List.filter_map (fun (i : I.t) ->
                 if O.is_branch i.I.opcode then Some (i.I.id, f.(i.I.id))
                 else None)
        in
        pairwise (List.map snd branch_fires) (fun both ->
            add "branch" Diag.Branch
              (Printf.sprintf "two branches fired%s" (witness both)));
        covered (List.map snd branch_fires) "branch" Diag.Branch "branch";
        match List.rev !diags with [] -> Clean | ds -> Diags ds
      with Bdd.Budget -> Skipped "BDD node budget exceeded")

let check ~pass (b : B.t) : outcome =
  match structural_diags ~pass b with
  | [] -> symbolic_diags ~pass b
  | ds -> Diags ds
