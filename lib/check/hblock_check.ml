(* The polynomial invariant checker at the hyperblock (pre-codegen)
   level: structural pre-checks here, then the three-valued gating
   analysis shared with the Psi-SSA layer ([Edge_ir.Pgate] — per-site
   fire regions and values as BDDs over the block's enumeration
   variables), then the invariant checks over that model.

   Checks: exit guards partition the predicate space (exactly one exit),
   guard predicate-OR disjointness (no two matching deliveries), no
   underivable value reaching a guard, double def fires for temps with
   data consumers, and the block's obligations — every hout and every
   store either fires or is explicitly nulled on every assignment,
   exactly once.

   Deliberately absent: a per-use def-before-use check (opt_fanout
   legally unguards instructions whose operands are conditionally
   produced — the instruction simply never fires on the other paths,
   and the obligation checks catch any output that thereby starves),
   and any positional ordering check (opt_sand legally appends guard
   defs at the end of the body; dataflow order is what matters). *)

module Hb = Edge_ir.Hblock
module Tac = Edge_ir.Tac
module Temp = Edge_ir.Temp
module Bdd = Edge_ir.Bdd
module Pg = Edge_ir.Pgate

type outcome = Clean | Skipped of string | Diags of Diag.t list

let check ~pass (h : Hb.t) : outcome =
  let body = h.Hb.body in
  let barr = Array.of_list body in
  let block = h.Hb.hname in
  let structural = ref [] in
  let add_structural where invariant msg =
    structural := Diag.make ~pass ~block ~where invariant msg :: !structural
  in
  (* store indices are positional; Null_store must reference one *)
  let store_count =
    List.length
      (List.filter
         (fun hi ->
           match hi.Hb.hop with Hb.Op (Tac.Store _) -> true | _ -> false)
         body)
  in
  Array.iteri
    (fun i hi ->
      match hi.Hb.hop with
      | Hb.Op (Tac.Phi _) ->
          add_structural (Printf.sprintf "I%d" i) Diag.Structure
            "phi survives into a hyperblock"
      | Hb.Null_store k ->
          if k < 0 || k >= store_count then
            add_structural (Printf.sprintf "I%d" i) Diag.Structure
              (Printf.sprintf "null store references store %d of %d" k
                 store_count)
      | _ -> ())
    barr;
  if !structural <> [] then Diags (List.rev !structural)
  else
    match Pg.analyze h with
    | Error msg -> Skipped msg
    | Ok g -> (
        let m = g.Pg.m in
        try
          let diags = ref [] in
          let add where invariant msg =
            diags := Diag.make ~pass ~block ~where invariant msg :: !diags
          in
          let witness = Pg.witness g in
          let pairwise events on_clash =
            let rec go = function
              | [] -> ()
              | ev :: rest ->
                  List.iter
                    (fun ev' ->
                      let both = Bdd.conj m ev ev' in
                      if Bdd.sat both then on_clash both)
                    rest;
                  go rest
            in
            go events
          in
          (* guards: no underivable value, and predicate-OR disjointness *)
          let check_guard where = function
            | None -> ()
            | Some gd ->
                List.iter
                  (fun p ->
                    let _, vu = Pg.temp_val g p in
                    let bad = Bdd.conj m (Pg.avail g p) vu in
                    if Bdd.sat bad then
                      add where Diag.Polarity
                        (Format.asprintf
                           "guard %a arrives with underivable value%s" Temp.pp
                           p (witness bad)))
                  gd.Hb.gpreds;
                (* one match event per (predicate temp, def site) — each
                   def is a distinct predicate delivery after codegen *)
                let events =
                  List.concat_map
                    (fun p ->
                      let pol_of vt vu =
                        if gd.Hb.gpol then Bdd.conj m vt (Bdd.neg m vu)
                        else Bdd.conj m (Bdd.neg m vt) (Bdd.neg m vu)
                      in
                      match Temp.Map.find_opt p g.Pg.sites with
                      | None ->
                          let vt, vu = Pg.temp_val g p in
                          [ pol_of vt vu ]
                      | Some ss ->
                          List.map
                            (fun i ->
                              Bdd.conj m g.Pg.e.(i)
                                (pol_of g.Pg.svt.(i) g.Pg.svu.(i)))
                            ss)
                    gd.Hb.gpreds
                in
                pairwise events (fun both ->
                    add where Diag.Pred_or
                      (Printf.sprintf "two matching predicates%s"
                         (witness both)))
          in
          Array.iteri
            (fun i hi -> check_guard (Printf.sprintf "I%d" i) hi.Hb.guard)
            barr;
          List.iteri
            (fun i ex ->
              check_guard (Printf.sprintf "exit%d" i) ex.Hb.eguard)
            h.Hb.hexits;
          (* exits partition the space *)
          let exit_events =
            List.map (fun ex -> Pg.guard_matched g ex.Hb.eguard) h.Hb.hexits
          in
          pairwise exit_events (fun both ->
              add "exit" Diag.Branch
                (Printf.sprintf "two exits can fire%s" (witness both)));
          let no_exit = Bdd.neg m (Bdd.disj_list m exit_events) in
          if Bdd.sat no_exit then
            add "exit" Diag.Branch
              (Printf.sprintf "no exit fires%s" (witness no_exit));
          (* double def fires, for temps consumed as data *)
          let data_consumed =
            List.fold_left
              (fun acc hi ->
                List.fold_left
                  (fun acc t -> Temp.Set.add t acc)
                  acc (Hb.data_uses hi))
              Temp.Set.empty body
          in
          Temp.Map.iter
            (fun t ss ->
              match ss with
              | [] | [ _ ] -> ()
              | _ ->
                  if Temp.Set.mem t data_consumed then
                    pairwise
                      (List.map (fun i -> g.Pg.e.(i)) ss)
                      (fun both ->
                        add
                          (Format.asprintf "%a" Temp.pp t)
                          Diag.Double_delivery
                          (Format.asprintf
                             "two defs of %a fire for a data consumer%s"
                             Temp.pp t (witness both))))
            g.Pg.sites;
          (* hout obligations: defined or explicitly nulled, exactly once *)
          List.iter
            (fun (x, prod) ->
              let def_events =
                match Temp.Map.find_opt prod g.Pg.sites with
                | None -> [ Bdd.True ] (* live-in: read fires always *)
                | Some ss -> List.map (fun i -> g.Pg.e.(i)) ss
              in
              let null_events =
                List.concat
                  (List.mapi
                     (fun i hi ->
                       match hi.Hb.hop with
                       | Hb.Null_write t when Temp.equal t prod ->
                           [ g.Pg.e.(i) ]
                       | _ -> [])
                     body)
              in
              let events = def_events @ null_events in
              let where = Format.asprintf "out %a" Temp.pp x in
              pairwise events (fun both ->
                  add where Diag.Double_delivery
                    (Format.asprintf
                       "output %a receives two tokens%s" Temp.pp x
                       (witness both)));
              let missing = Bdd.neg m (Bdd.disj_list m events) in
              if Bdd.sat missing then
                add where Diag.Output_completeness
                  (Format.asprintf
                     "output %a (from %a) starves%s" Temp.pp x Temp.pp prod
                     (witness missing)))
            h.Hb.houts;
          (* store obligations: each store fires or is nulled, once *)
          Array.iteri
            (fun k si ->
              let null_events =
                List.concat
                  (List.mapi
                     (fun i hi ->
                       match hi.Hb.hop with
                       | Hb.Null_store k' when k' = k -> [ g.Pg.e.(i) ]
                       | _ -> [])
                     body)
              in
              let events = g.Pg.e.(si) :: null_events in
              let where = Printf.sprintf "store@%d" k in
              pairwise events (fun both ->
                  add where Diag.Lsid
                    (Printf.sprintf "store %d resolved twice%s" k
                       (witness both)));
              let missing = Bdd.neg m (Bdd.disj_list m events) in
              if Bdd.sat missing then
                add where Diag.Output_completeness
                  (Printf.sprintf "store %d starves%s" k (witness missing)))
            g.Pg.store_positions;
          match List.rev !diags with [] -> Clean | ds -> Diags ds
        with Bdd.Budget -> Skipped "BDD node budget exceeded")
