(* The polynomial invariant checker at the hyperblock (pre-codegen)
   level: the same three-valued gating analysis as [Block_check], but
   over guarded TAC, so a pass that breaks an invariant is caught right
   after it runs instead of after codegen.

   The symbolic model mirrors what codegen will emit:

     avail(t)  — assignments on which temp [t] carries a token: always,
                 for live-in temps (a register read fires
                 unconditionally); otherwise the union of its def
                 sites' fire regions.  There is no fallthrough from a
                 def site to a live-in read — codegen emits reads only
                 for temps with no in-block producer.
     E(site)   — a site fires when its guard matches and its data
                 operands are available (sand short-circuits on a false
                 left operand, as the sand instruction does).
     value     — three-valued (true/false/underivable) per def site,
                 with compare defs sharing one variable exactly like
                 encoded-block tests (complementary integer compares
                 share it negated; float compares never merge).

   Checks: exit guards partition the predicate space (exactly one exit),
   guard predicate-OR disjointness (no two matching deliveries), no
   underivable value reaching a guard, double def fires for temps with
   data consumers, and the block's obligations — every hout and every
   store either fires or is explicitly nulled on every assignment,
   exactly once.

   Deliberately absent: a per-use def-before-use check (opt_fanout
   legally unguards instructions whose operands are conditionally
   produced — the instruction simply never fires on the other paths,
   and the obligation checks catch any output that thereby starves),
   and any positional ordering check (opt_sand legally appends guard
   defs at the end of the body; dataflow order is what matters). *)

module Hb = Edge_ir.Hblock
module Tac = Edge_ir.Tac
module Temp = Edge_ir.Temp
module O = Edge_isa.Opcode
module Bdd = Edge_ir.Bdd
module Gate = Edge_ir.Gate

type outcome = Clean | Skipped of string | Diags of Diag.t list

(* operand identity for compare-variable sharing: chase single-def mov
   chains so [t2 = mov t1; tlt t2, n] shares with [tlt t1, n] *)
type horigin = HTemp of Temp.t | HImm of int64

let origin sites body op =
  let rec go op seen =
    match op with
    | Tac.C c -> HImm c
    | Tac.T t -> (
        if Temp.Set.mem t seen then HTemp t
        else
          match Temp.Map.find_opt t sites with
          | Some [ i ] -> (
              match (List.nth body i).Hb.hop with
              | Hb.Op (Tac.Un { op = O.Mov; a; _ }) ->
                  go a (Temp.Set.add t seen)
              | _ -> HTemp t)
          | _ -> HTemp t)
  in
  go op Temp.Set.empty

let check ~pass (h : Hb.t) : outcome =
  let body = h.Hb.body in
  let barr = Array.of_list body in
  let len = Array.length barr in
  let sites = Hb.def_sites h in
  let block = h.Hb.hname in
  let structural = ref [] in
  let add_structural where invariant msg =
    structural := Diag.make ~pass ~block ~where invariant msg :: !structural
  in
  (* store indices are positional; Null_store must reference one *)
  let store_positions =
    let pos = ref [] in
    List.iteri
      (fun i hi ->
        match hi.Hb.hop with
        | Hb.Op (Tac.Store _) -> pos := i :: !pos
        | _ -> ())
      body;
    Array.of_list (List.rev !pos)
  in
  Array.iteri
    (fun i hi ->
      match hi.Hb.hop with
      | Hb.Op (Tac.Phi _) ->
          add_structural (Printf.sprintf "I%d" i) Diag.Structure
            "phi survives into a hyperblock"
      | Hb.Null_store k ->
          if k < 0 || k >= Array.length store_positions then
            add_structural (Printf.sprintf "I%d" i) Diag.Structure
              (Printf.sprintf "null store references store %d of %d" k
                 (Array.length store_positions))
      | _ -> ())
    barr;
  if !structural <> [] then Diags (List.rev !structural)
  else begin
    (* ---- relevance: temps whose boolean value feeds guard matching ---- *)
    let relevant = ref Temp.Set.empty in
    let frontier = ref [] in
    let mark t =
      if not (Temp.Set.mem t !relevant) then begin
        relevant := Temp.Set.add t !relevant;
        frontier := t :: !frontier
      end
    in
    List.iter
      (fun hi ->
        List.iter mark (Hb.guard_uses hi.Hb.guard);
        match hi.Hb.hop with
        | Hb.Sand { a; b; _ } ->
            mark a;
            mark b
        | _ -> ())
      body;
    List.iter (fun e -> List.iter mark (Hb.guard_uses e.Hb.eguard)) h.Hb.hexits;
    let mark_op = function Tac.T t -> mark t | Tac.C _ -> () in
    while !frontier <> [] do
      let work = !frontier in
      frontier := [];
      List.iter
        (fun t ->
          match Temp.Map.find_opt t sites with
          | None -> ()
          | Some ss ->
              List.iter
                (fun i ->
                  match barr.(i).Hb.hop with
                  | Hb.Op (Tac.Un { op = O.Mov | O.Not | O.Neg; a; _ }) ->
                      mark_op a
                  | Hb.Sand { a; b; _ } ->
                      mark a;
                      mark b
                  | _ -> ())
                ss)
        work
    done;
    let relevant = !relevant in
    (* ---- variables ---- *)
    let m = Bdd.create () in
    let names = ref [] in
    let count = ref 0 in
    let alloc name =
      let pos = !count in
      incr count;
      names := name :: !names;
      pos
    in
    let key_tbl = Hashtbl.create 16 in
    let site_var = Array.make len None in
    let livein_var = Hashtbl.create 16 in
    let cmp_key (c : Tac.instr) =
      match c with
      | Tac.Cmp { cond; fp; a; b; _ } ->
          let oa = origin sites body a and ob = origin sites body b in
          if fp then Some (`F (cond, oa, ob), false)
          else
            let cond, oa, ob =
              if compare oa ob > 0 then (Gate.swap_cond cond, ob, oa)
              else (cond, oa, ob)
            in
            let cond, neg = Gate.normalize_cond cond in
            Some (`I (cond, oa, ob), neg)
      | _ -> None
    in
    Array.iteri
      (fun i hi ->
        match Hb.hop_def hi.Hb.hop with
        | Some d when Temp.Set.mem d relevant -> (
            match hi.Hb.hop with
            | Hb.Op (Tac.Un { op = O.Mov | O.Not | O.Neg; _ }) | Hb.Sand _ ->
                () (* derived *)
            | Hb.Op (Tac.Cmp _ as c) -> (
                let name = Format.asprintf "%a@%d" Temp.pp d i in
                match cmp_key c with
                | Some (key, neg) ->
                    let pos =
                      match Hashtbl.find_opt key_tbl key with
                      | Some pos -> pos
                      | None ->
                          let pos = alloc name in
                          Hashtbl.replace key_tbl key pos;
                          pos
                    in
                    site_var.(i) <- Some (pos, neg)
                | None -> site_var.(i) <- Some (alloc name, false))
            | _ ->
                let name = Format.asprintf "%a@%d" Temp.pp d i in
                site_var.(i) <- Some (alloc name, false))
        | _ -> ())
      barr;
    Temp.Set.iter
      (fun t ->
        if not (Temp.Map.mem t sites) then
          Hashtbl.replace livein_var t
            (alloc (Format.asprintf "%a" Temp.pp t)))
      relevant;
    let names_arr = Array.of_list (List.rev !names) in
    (* ---- fixpoint over site fire regions and values ---- *)
    let e = Array.make len Bdd.False in
    let svt = Array.make len Bdd.False in
    let svu = Array.make len Bdd.False in
    let avail t =
      match Temp.Map.find_opt t sites with
      | None -> Bdd.True
      | Some ss -> Bdd.disj_list m (List.map (fun i -> e.(i)) ss)
    in
    let temp_val t =
      match Temp.Map.find_opt t sites with
      | None -> (
          match Hashtbl.find_opt livein_var t with
          | Some pos -> (Bdd.var m pos, Bdd.False)
          | None -> (Bdd.False, Bdd.True))
      | Some ss ->
          let vt =
            Bdd.disj_list m
              (List.map (fun i -> Bdd.conj m e.(i) svt.(i)) ss)
          in
          let vu =
            Bdd.disj_list m
              (List.map (fun i -> Bdd.conj m e.(i) svu.(i)) ss)
          in
          (vt, vu)
    in
    let op_val = function
      | Tac.C c ->
          ((if Int64.logand c 1L <> 0L then Bdd.True else Bdd.False), Bdd.False)
      | Tac.T t -> temp_val t
    in
    let op_avail = function Tac.C _ -> Bdd.True | Tac.T t -> avail t in
    let is_false_op op =
      let vt, vu = op_val op in
      Bdd.conj m (Bdd.neg m vt) (Bdd.neg m vu)
    in
    let guard_matched = function
      | None -> Bdd.True
      | Some g ->
          Bdd.disj_list m
            (List.map
               (fun p ->
                 let vt, vu = temp_val p in
                 let pol =
                   if g.Hb.gpol then Bdd.conj m vt (Bdd.neg m vu)
                   else Bdd.conj m (Bdd.neg m vt) (Bdd.neg m vu)
                 in
                 Bdd.conj m (avail p) pol)
               g.Hb.gpreds)
    in
    let step i (hi : Hb.hinstr) =
      let g = guard_matched hi.Hb.guard in
      let fire =
        match hi.Hb.hop with
        | Hb.Sand { a; b; _ } ->
            Bdd.conj m g
              (Bdd.conj m (avail a)
                 (Bdd.disj m (is_false_op (Tac.T a)) (avail b)))
        | _ ->
            Bdd.conj_list m (g :: List.map op_avail
              (List.map (fun t -> Tac.T t) (Hb.data_uses hi)))
      in
      e.(i) <- fire;
      (match site_var.(i) with
      | Some (pos, neg) ->
          svt.(i) <- (if neg then Bdd.nvar m pos else Bdd.var m pos);
          svu.(i) <- Bdd.False
      | None -> (
          match hi.Hb.hop with
          | Hb.Op (Tac.Un { op = O.Mov; a; _ }) ->
              let vt, vu = op_val a in
              svt.(i) <- vt;
              svu.(i) <- vu
          | Hb.Op (Tac.Un { op = O.Not; a; _ }) ->
              let vt, vu = op_val a in
              svt.(i) <- Bdd.conj m (op_avail a)
                  (Bdd.conj m (Bdd.neg m vt) (Bdd.neg m vu));
              svu.(i) <- vu
          | Hb.Op (Tac.Un { op = O.Neg; a; _ }) ->
              let vt, vu = op_val a in
              svt.(i) <- vt;
              svu.(i) <- vu
          | Hb.Sand { a; b; _ } ->
              let vta, vua = op_val (Tac.T a) in
              let vtb, vub = op_val (Tac.T b) in
              let ta = Bdd.conj m vta (Bdd.neg m vua) in
              svt.(i) <- Bdd.conj m ta vtb;
              svu.(i) <- Bdd.disj m vua (Bdd.conj m ta vub)
          | _ ->
              (* non-relevant def: value never queried by a guard *)
              svu.(i) <- Bdd.True))
    in
    let snapshot () =
      Array.append (Array.map Bdd.uid e)
        (Array.append (Array.map Bdd.uid svt) (Array.map Bdd.uid svu))
    in
    let max_rounds = (2 * len) + 16 in
    let rec iterate round prev =
      if round > max_rounds then Error "fixpoint did not converge"
      else begin
        Array.iteri step barr;
        let cur = snapshot () in
        if cur = prev then Ok () else iterate (round + 1) cur
      end
    in
    match iterate 0 (snapshot ()) with
    | exception Bdd.Budget -> Skipped "BDD node budget exceeded"
    | Error msg -> Skipped msg
    | Ok () -> (
        try
          let diags = ref [] in
          let add where invariant msg =
            diags := Diag.make ~pass ~block ~where invariant msg :: !diags
          in
          let witness cond =
            match Bdd.any_sat cond with
            | None | Some [] -> ""
            | Some pairs ->
                Printf.sprintf " on path [%s]"
                  (String.concat " "
                     (List.map
                        (fun (v, value) ->
                          Printf.sprintf "%s=%d" names_arr.(v)
                            (if value then 1 else 0))
                        pairs))
          in
          let pairwise events on_clash =
            let rec go = function
              | [] -> ()
              | ev :: rest ->
                  List.iter
                    (fun ev' ->
                      let both = Bdd.conj m ev ev' in
                      if Bdd.sat both then on_clash both)
                    rest;
                  go rest
            in
            go events
          in
          (* guards: no underivable value, and predicate-OR disjointness *)
          let check_guard where = function
            | None -> ()
            | Some g ->
                List.iter
                  (fun p ->
                    let _, vu = temp_val p in
                    let bad = Bdd.conj m (avail p) vu in
                    if Bdd.sat bad then
                      add where Diag.Polarity
                        (Format.asprintf
                           "guard %a arrives with underivable value%s" Temp.pp
                           p (witness bad)))
                  g.Hb.gpreds;
                (* one match event per (predicate temp, def site) — each
                   def is a distinct predicate delivery after codegen *)
                let events =
                  List.concat_map
                    (fun p ->
                      let pol_of vt vu =
                        if g.Hb.gpol then Bdd.conj m vt (Bdd.neg m vu)
                        else Bdd.conj m (Bdd.neg m vt) (Bdd.neg m vu)
                      in
                      match Temp.Map.find_opt p sites with
                      | None ->
                          let vt, vu = temp_val p in
                          [ pol_of vt vu ]
                      | Some ss ->
                          List.map
                            (fun i ->
                              Bdd.conj m e.(i) (pol_of svt.(i) svu.(i)))
                            ss)
                    g.Hb.gpreds
                in
                pairwise events (fun both ->
                    add where Diag.Pred_or
                      (Printf.sprintf "two matching predicates%s"
                         (witness both)))
          in
          Array.iteri
            (fun i hi -> check_guard (Printf.sprintf "I%d" i) hi.Hb.guard)
            barr;
          List.iteri
            (fun i ex ->
              check_guard (Printf.sprintf "exit%d" i) ex.Hb.eguard)
            h.Hb.hexits;
          (* exits partition the space *)
          let exit_events =
            List.map (fun ex -> guard_matched ex.Hb.eguard) h.Hb.hexits
          in
          pairwise exit_events (fun both ->
              add "exit" Diag.Branch
                (Printf.sprintf "two exits can fire%s" (witness both)));
          let no_exit = Bdd.neg m (Bdd.disj_list m exit_events) in
          if Bdd.sat no_exit then
            add "exit" Diag.Branch
              (Printf.sprintf "no exit fires%s" (witness no_exit));
          (* double def fires, for temps consumed as data *)
          let data_consumed =
            List.fold_left
              (fun acc hi ->
                List.fold_left
                  (fun acc t -> Temp.Set.add t acc)
                  acc (Hb.data_uses hi))
              Temp.Set.empty body
          in
          Temp.Map.iter
            (fun t ss ->
              match ss with
              | [] | [ _ ] -> ()
              | _ ->
                  if Temp.Set.mem t data_consumed then
                    pairwise
                      (List.map (fun i -> e.(i)) ss)
                      (fun both ->
                        add
                          (Format.asprintf "%a" Temp.pp t)
                          Diag.Double_delivery
                          (Format.asprintf
                             "two defs of %a fire for a data consumer%s"
                             Temp.pp t (witness both))))
            sites;
          (* hout obligations: defined or explicitly nulled, exactly once *)
          List.iter
            (fun (x, prod) ->
              let def_events =
                match Temp.Map.find_opt prod sites with
                | None -> [ Bdd.True ] (* live-in: read fires always *)
                | Some ss -> List.map (fun i -> e.(i)) ss
              in
              let null_events =
                List.concat
                  (List.mapi
                     (fun i hi ->
                       match hi.Hb.hop with
                       | Hb.Null_write t when Temp.equal t prod -> [ e.(i) ]
                       | _ -> [])
                     body)
              in
              let events = def_events @ null_events in
              let where = Format.asprintf "out %a" Temp.pp x in
              pairwise events (fun both ->
                  add where Diag.Double_delivery
                    (Format.asprintf
                       "output %a receives two tokens%s" Temp.pp x
                       (witness both)));
              let missing = Bdd.neg m (Bdd.disj_list m events) in
              if Bdd.sat missing then
                add where Diag.Output_completeness
                  (Format.asprintf
                     "output %a (from %a) starves%s" Temp.pp x Temp.pp prod
                     (witness missing)))
            h.Hb.houts;
          (* store obligations: each store fires or is nulled, once *)
          Array.iteri
            (fun k si ->
              let null_events =
                List.concat
                  (List.mapi
                     (fun i hi ->
                       match hi.Hb.hop with
                       | Hb.Null_store k' when k' = k -> [ e.(i) ]
                       | _ -> [])
                     body)
              in
              let events = e.(si) :: null_events in
              let where = Printf.sprintf "store@%d" k in
              pairwise events (fun both ->
                  add where Diag.Lsid
                    (Printf.sprintf "store %d resolved twice%s" k
                       (witness both)));
              let missing = Bdd.neg m (Bdd.disj_list m events) in
              if Bdd.sat missing then
                add where Diag.Output_completeness
                  (Printf.sprintf "store %d starves%s" k (witness missing)))
            store_positions;
          match List.rev !diags with [] -> Clean | ds -> Diags ds
        with Bdd.Budget -> Skipped "BDD node budget exceeded")
  end
