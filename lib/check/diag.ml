(* Structured checker diagnostics: every violation names the pass that
   produced the ill-formed code, the (hyper)block, the instruction or
   output it anchors to, and the invariant it breaks.  The rendered form
   is stable and machine-parseable — the shrinker keys minimization on
   (pass, invariant) so a reproducer stays attributable to the pass that
   broke it, and bin/tsim recognizes checker failures in compile errors
   to trigger trace emission. *)

type invariant =
  | Structure  (** block/hyperblock shape: arities, ranges, producers *)
  | Encode  (** binary encodability: round trip, reserved target, imm width *)
  | Fanout  (** fanout-tree well-formedness (mov4 slot/packing rules) *)
  | Polarity  (** a predicate (or guard) value is underivable/unknown *)
  | Def_use  (** an operand can be consumed where no def reaches it *)
  | Double_delivery  (** two tokens can reach one operand/output *)
  | Pred_or  (** predicate-OR merge not disjoint: two matching predicates *)
  | Output_completeness
      (** a write/store/output can starve on some predicate assignment *)
  | Branch  (** not exactly one branch fires on every assignment *)
  | Lsid  (** LSID ordering/resolution: double or missing resolution *)
  | Alloc  (** register allocation: clashing or missing assignments *)
  | Placement  (** schedule placement: arity or tile range *)

let invariant_name = function
  | Structure -> "structure"
  | Encode -> "encode"
  | Fanout -> "fanout"
  | Polarity -> "polarity"
  | Def_use -> "def-use"
  | Double_delivery -> "double-delivery"
  | Pred_or -> "pred-or"
  | Output_completeness -> "output-completeness"
  | Branch -> "branch"
  | Lsid -> "lsid"
  | Alloc -> "alloc"
  | Placement -> "placement"

type t = {
  pass : string;  (** the pass after which the violation was detected *)
  block : string;  (** hyperblock / encoded-block name *)
  where : string;  (** instruction or output anchor, e.g. "I3", "W0", "S2" *)
  invariant : invariant;
  message : string;
}

let make ~pass ~block ~where invariant message =
  { pass; block; where; invariant; message }

let to_string d =
  Printf.sprintf "check[pass=%s block=%s at=%s invariant=%s]: %s" d.pass
    d.block d.where (invariant_name d.invariant) d.message

let pp ppf d = Format.pp_print_string ppf (to_string d)

(* Lint findings (the ineffectuality report mode) share the diagnostic
   grammar under a distinct prefix: they are observations about legal
   code, not failures, so they must never parse as checker output. *)
let lint_line ~block ~at ~pred msg =
  Printf.sprintf "ineff[block=%s at=%s pred=%s]: %s" block at pred msg

(* Extract (pass, invariant) from a rendered diagnostic — possibly
   embedded in a larger compile-error string.  Used by the shrinker's
   keep predicate and by bin/tsim to recognize checker failures. *)
let parse_key (s : string) : (string * string) option =
  let find_field field =
    let marker = field ^ "=" in
    let rec scan i =
      if i + String.length marker > String.length s then None
      else if String.sub s i (String.length marker) = marker then begin
        let start = i + String.length marker in
        let stop = ref start in
        while
          !stop < String.length s
          && (match s.[!stop] with ' ' | ']' -> false | _ -> true)
        do
          incr stop
        done;
        Some (String.sub s start (!stop - start))
      end
      else scan (i + 1)
    in
    scan 0
  in
  let has_prefix =
    let rec scan i =
      if i + 11 > String.length s then false
      else String.sub s i 11 = "check[pass=" || scan (i + 1)
    in
    scan 0
  in
  if not has_prefix then None
  else
    match (find_field "pass", find_field "invariant") with
    | Some p, Some i -> Some (p, i)
    | _ -> None
