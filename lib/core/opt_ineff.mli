(** Ineffectuality elimination (not in the paper): over the Psi-SSA
    analysis ({!Edge_ir.Psi_ssa.ineffectuality}), delete def sites
    whose effectual region is provably empty (sites that can fault only
    when they provably never fire), drop guards proven to be
    ineffectual predicate deliveries, cascade-delete the Null_stores of
    deleted stores (renumbering the positional indices), and keep one
    def site for any temp the surviving code still names.  Inconclusive
    analyses skip the block. *)

type plan = { pdead : int list; pdrops : int list }

exception Breach of string
(** A cross-validation hook disproved a plan.  The message is a
    rendered [check\[pass=opt_ineff …\]] diagnostic. *)

val cross_validate :
  (Edge_ir.Hblock.t -> plan -> (unit, string) result) option ref
(** When set (the fuzz oracle's enumerator), every computed plan is
    re-proved before anything acts on it; a rejection raises
    {!Breach}.  Set once at module init — worker domains share it. *)

val plan : Edge_ir.Hblock.t -> (plan, string) result
(** @raise Breach when {!cross_validate} rejects the plan. *)

type finding = {
  fblock : string;
  fsite : int;
  fkind : [ `Dead | `Guard_drop ];
  fpred : string;  (** guard rendering, "-" when unguarded *)
  fdetail : string;  (** the instruction *)
}

val render : finding -> string
(** ["ineff[block=... at=I... pred=...]: ..."] — the lint line. *)

val findings : Edge_ir.Hblock.t -> finding list
(** The plan as a report, without mutating the block (lint mode). *)

val run : ?m:Edge_obs.Metrics.t -> Edge_ir.Hblock.t -> unit
(** Apply the plan.  [m] receives ["pass.ineff.instrs_deleted"],
    ["pass.ineff.guards_dropped"] and ["pass.ineff.blocks_skipped"]. *)

val force_dead : int list ref
(** Test hook: extra body positions forced into the dead set, so the
    mutation tests can prove the checker and the enumerator
    cross-validation catch bogus verdicts.  Leave [[]] outside tests. *)
