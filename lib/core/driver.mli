(** End-to-end compilation pipeline.

    SSA construction → classic scalar opts → SSA destruction → (Hyper
    only: loop unrolling, region selection, if-conversion to naively
    predicated hyperblocks) → predicate optimizations per config
    (Sections 5.1–5.3) → register allocation → code generation → spatial
    scheduling. The BB configuration uses singleton regions, so the same
    machinery produces basic-block code. Regions whose generated blocks
    exceed machine limits are split and retried. *)

type compiled = {
  program : Edge_isa.Program.t;
  placements : (string * int array) list;
      (** per block: instruction id → execution-tile index *)
  static_fanout_moves : int;
  static_instrs : int;
  static_blocks : int;
  explicit_predicates : int;
  pass_counters : (string * int) list;
      (** per-pass optimization counters ("pass.*", sorted by name) from
          the final generate attempt: if-conversion output sizes, guards
          removed by fanout reduction, instructions/exits merged, outputs
          promoted, sand chains converted, ineffectual instructions
          deleted.  Every key parses back through {!Pass_id.of_counter}
          (asserted), so counters and [check\[pass=…\]] diagnostics share
          one pass identity. *)
}

val compile_cfg :
  ?check:bool ->
  ?lint:(Opt_ineff.finding -> unit) ->
  Edge_ir.Cfg.t ->
  Config.t ->
  (compiled, string) result
(** The CFG is consumed (mutated); pass a fresh lowering or a
    {!Edge_ir.Cfg.copy}.

    [check] runs the static verifier ({!Edge_check.Check}) after every
    pass — if-conversion, each predicate optimization, register
    allocation, code generation, scheduling, plus the Psi-SSA
    construct/destruct round-trip — and fails compilation with a
    structured [check\[pass=… invariant=…\]] diagnostic on the first
    violation.  Defaults to {!Edge_check.Check.enabled} (the
    [DFP_CHECK] environment variable or a [--check] flag).

    [lint] switches the ineffectuality pass into report mode: every
    finding is passed to the callback and the code is left untouched
    (deletion is suppressed even when the config enables it), so the
    diagnostics describe the program that actually runs. *)
