(** Disjoint instruction merging (Section 5.3) — including the paper's
    three categories.

    Lexically equivalent instructions (same operation, operands and
    destination) with different guards are merged into one:

    - category 1 — same predicate, opposite polarities: the pair fires on
      either outcome, so the merged instruction takes the guard of the
      instruction *defining* that predicate (promotion to the dominating
      predicate block);
    - category 2 — different predicates, same polarity: the merged
      instruction receives both predicates, exploiting predicate-OR
      (Section 3.5); at most one can match because the originals were on
      disjoint paths;
    - category 3 — different predicates, opposite polarities: the test
      generating one predicate is inverted (and every guard mentioning it
      flipped), reducing to category 2.

    Guarded exits to the same target merge the same way — the bro_f
    predicate-OR exit of Figure 3a. Stores are not merged (LSID
    identity); null writes and null stores merge freely. *)

val run : ?m:Edge_obs.Metrics.t -> Edge_ir.Hblock.t -> unit
(** [m] (optional) receives the pass counters
    ["pass.merge.instrs_merged"] and ["pass.merge.exits_merged"]. *)

val merge_body : Edge_ir.Hblock.t -> int
(** Merge body instructions only; returns instructions eliminated. *)

val merge_exits : Edge_ir.Hblock.t -> int
(** Merge guarded exits to the same target; returns exits eliminated. *)
