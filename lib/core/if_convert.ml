module Cfg = Edge_ir.Cfg
module Tac = Edge_ir.Tac
module Temp = Edge_ir.Temp
module Label = Edge_ir.Label
module Dom = Edge_ir.Dom
module Liveness = Edge_ir.Liveness
module Hb = Edge_ir.Hblock
module Opcode = Edge_isa.Opcode

type region = { head : Label.t; blocks : Label.Set.t }

let exit_node = "@EXIT"

(* Internal edges stay inside the region and are not back edges to the
   head; everything else is an exit edge. *)
let internal_edge region (a, s) =
  ignore a;
  Label.Set.mem s region.blocks && not (Label.equal s region.head)

let exit_edge_live cfg liveness ~src ~target ~retq =
  match target with
  | None -> Temp.Set.singleton retq
  | Some s -> Liveness.live_on_edge liveness cfg src s

(* Topological order of region blocks ignoring back edges to the head. *)
let topo_order cfg region =
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec dfs l =
    if (not (Hashtbl.mem visited l)) && Label.Set.mem l region.blocks then begin
      Hashtbl.add visited l ();
      List.iter
        (fun s -> if internal_edge region (l, s) then dfs s)
        (Cfg.succs cfg l);
      order := l :: !order
    end
  in
  dfs region.head;
  !order

(* Post-dominators of the region subgraph, rooted at a virtual exit that
   absorbs every exit edge. *)
let region_postdom cfg region order =
  let succs l =
    if Label.equal l exit_node then []
    else
      let s = Cfg.succs cfg (Cfg.block cfg l).Cfg.label in
      let internal = List.filter (fun x -> internal_edge region (l, x)) s in
      let has_exit =
        List.exists (fun x -> not (internal_edge region (l, x))) s
        || (match (Cfg.block cfg l).Cfg.term with
           | Tac.Ret _ -> true
           | Tac.Jmp _ | Tac.Cbr _ -> false)
      in
      if has_exit then exit_node :: internal else internal
  in
  let preds l =
    if Label.equal l exit_node then
      List.filter (fun b -> List.mem exit_node (succs b)) order
    else
      List.filter
        (fun p -> Label.Set.mem p region.blocks && List.mem l (succs p))
        order
  in
  (* reverse postorder of the reversed graph from the virtual exit *)
  let visited = Hashtbl.create 16 in
  let post = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem visited l) then begin
      Hashtbl.add visited l ();
      List.iter dfs (preds l);
      post := l :: !post
    end
  in
  dfs exit_node;
  Dom.compute
    {
      Dom.g_entry = exit_node;
      g_nodes = !post;
      g_preds = succs;
      g_succs = preds;
    }

type edge_guard = Hb.guard option
(* [None]: the edge is traversed whenever its source executes *)

type conv = {
  cfg : Cfg.t;
  region : region;
  mutable body : Hb.hinstr list;  (* reversed *)
  guards : (Label.t, Hb.guard option) Hashtbl.t;
  edge_guards : (Label.t * Label.t, edge_guard) Hashtbl.t;
  out_maps : (Label.t, Temp.t Temp.Map.t) Hashtbl.t;
  mutable defined : Temp.Set.t;  (* canonical temps defined in region *)
  mutable exits :
    (Label.t * Label.t option * edge_guard) list;
    (* (source, target (None = halt), guard), in discovery order *)
  mutable stores : (Label.t * int) list;
    (* (source block, store index) per emitted store, body order *)
  mutable cond_edges : (Label.t * Label.t * Hb.guard) list;
    (* conditional edges (src, dst-or-virtual-exit, edge guard) *)
  def_guard : (Temp.t, [ `One of Hb.guard option | `Many ]) Hashtbl.t;
    (* guard of each temp's definition, for branch-predicate gating *)
}

let emit cv hi =
  (match Hb.hop_def hi.Hb.hop with
  | Some d ->
      Hashtbl.replace cv.def_guard d
        (match Hashtbl.find_opt cv.def_guard d with
        | None -> `One hi.Hb.guard
        | Some _ -> `Many)
  | None -> ());
  cv.body <- hi :: cv.body

let fresh cv = Temp.Gen.fresh cv.cfg.Cfg.gen

let version map x = Option.value ~default:x (Temp.Map.find_opt x map)

(* Combine a set of control-dependence edge guards into one instruction
   guard, materializing a combining movi chain for mixed polarities. *)
let combine_guards cv (gs : edge_guard list) : Hb.guard option =
  let gs = List.sort_uniq compare gs in
  match gs with
  | [] -> None
  | [ g ] -> g
  | _ ->
      if List.mem None gs then None
      else
        let all = List.filter_map Fun.id gs in
        let pols = List.sort_uniq compare (List.map (fun g -> g.Hb.gpol) all) in
        let single_pred g =
          match g.Hb.gpreds with [ p ] -> Some (p, g.Hb.gpol) | _ -> None
        in
        let singles = List.map single_pred all in
        if List.for_all Option.is_some singles && List.length pols = 1 then
          Some
            {
              Hb.gpol = List.hd pols;
              gpreds = List.filter_map (Option.map fst) singles;
            }
        else begin
          (* mixed polarities or nested OR guards: generate a combining
             predicate (Figure 6d) *)
          let c = fresh cv in
          List.iter
            (fun g ->
              emit cv
                {
                  Hb.hop = Hb.Op (Tac.Un { dst = c; op = Opcode.Mov; a = Tac.C 1L });
                  guard = Some g;
                })
            all;
          cv.defined <- Temp.Set.add c cv.defined;
          Some (Hb.singleton c true)
        end

let convert ?m cfg liveness region ~retq =
  let order = topo_order cfg region in
  if
    not
      (List.length order = Label.Set.cardinal region.blocks
      && List.for_all (fun l -> Label.Set.mem l region.blocks) order)
  then Error (Printf.sprintf "region %s: unreachable or cyclic blocks" region.head)
  else begin
    let pdom = region_postdom cfg region order in
    let cv =
      {
        cfg;
        region;
        body = [];
        guards = Hashtbl.create 16;
        edge_guards = Hashtbl.create 16;
        out_maps = Hashtbl.create 16;
        defined = Temp.Set.empty;
        exits = [];
        stores = [];
        cond_edges = [];
        def_guard = Hashtbl.create 32;
      }
    in
    (* control-dependence sets, computed as edges are discovered; cd(B) is
       filled from branch edges of already-processed blocks, so compute
       structurally first: for branch edge (a -> s), every node from s up
       the postdominator tree until pdom(a) is control-dependent on it *)
    let cd : (Label.t, (Label.t * Label.t) list) Hashtbl.t = Hashtbl.create 16 in
    let record_cd (a, s) =
      let stop = Dom.idom pdom a in
      let rec walk x =
        let continue_walk =
          match stop with Some st -> not (Label.equal x st) | None -> true
        in
        if continue_walk && not (Label.equal x exit_node) then begin
          let prev = Option.value ~default:[] (Hashtbl.find_opt cd x) in
          if not (List.mem (a, s) prev) then
            Hashtbl.replace cd x ((a, s) :: prev);
          match Dom.idom pdom x with Some p -> walk p | None -> ()
        end
      in
      walk s
    in
    List.iter
      (fun a ->
        match (Cfg.block cfg a).Cfg.term with
        | Tac.Cbr { if_true; if_false; _ } when not (Label.equal if_true if_false)
          ->
            let node_of s = if internal_edge region (a, s) then s else exit_node in
            record_cd (a, node_of if_true);
            record_cd (a, node_of if_false)
        | Tac.Cbr _ | Tac.Jmp _ | Tac.Ret _ -> ())
      order;
    (* process blocks in topological order *)
    let errors = ref [] in
    List.iter
      (fun l ->
        let b = Cfg.block cfg l in
        (* 1. block guard from control-dependence edges *)
        let g =
          if Label.equal l region.head then None
          else
            let edges = Option.value ~default:[] (Hashtbl.find_opt cd l) in
            let egs =
              List.map
                (fun (a, s) ->
                  match Hashtbl.find_opt cv.edge_guards (a, s) with
                  | Some g -> g
                  | None -> None)
                edges
            in
            combine_guards cv egs
        in
        Hashtbl.replace cv.guards l g;
        (* 2. merge incoming version maps, emitting join moves *)
        let in_edges =
          List.filter
            (fun p ->
              Label.Set.mem p region.blocks
              && List.exists
                   (fun s -> Label.equal s l && internal_edge region (p, s))
                   (Cfg.succs cfg p))
            order
        in
        let in_map =
          if Label.equal l region.head then Temp.Map.empty
          else begin
            let maps =
              List.map
                (fun p ->
                  ( p,
                    Option.value ~default:Temp.Map.empty
                      (Hashtbl.find_opt cv.out_maps p) ))
                in_edges
            in
            let all_temps =
              List.fold_left
                (fun acc (_, m) ->
                  Temp.Map.fold (fun k _ acc -> Temp.Set.add k acc) m acc)
                Temp.Set.empty maps
            in
            Temp.Set.fold
              (fun x acc ->
                let versions =
                  List.map (fun (p, m) -> (p, version m x)) maps
                in
                let distinct =
                  List.sort_uniq Temp.compare (List.map snd versions)
                in
                match distinct with
                | [] -> acc
                | [ v ] -> Temp.Map.add x v acc
                | _ ->
                    let xj = fresh cv in
                    List.iter
                      (fun (p, v) ->
                        let eg =
                          match Hashtbl.find_opt cv.edge_guards (p, l) with
                          | Some g -> g
                          | None -> None
                        in
                        emit cv
                          {
                            Hb.hop =
                              Hb.Op
                                (Tac.Un { dst = xj; op = Opcode.Mov; a = Tac.T v });
                            guard = eg;
                          })
                      versions;
                    Temp.Map.add x xj acc)
              all_temps Temp.Map.empty
          end
        in
        (* 3. rename and emit the block's instructions under guard g *)
        let map = ref in_map in
        let rename_op o =
          match o with
          | Tac.C _ -> o
          | Tac.T t -> Tac.T (version !map t)
        in
        List.iter
          (fun i ->
            match i with
            | Tac.Phi _ -> errors := "phi in region" :: !errors
            | _ ->
                let i = Tac.map_operands rename_op i in
                let i =
                  match Tac.def i with
                  | None -> i
                  | Some d ->
                      let v = fresh cv in
                      cv.defined <- Temp.Set.add d cv.defined;
                      map := Temp.Map.add d v !map;
                      Tac.with_dst v i
                in
                (match i with
                | Tac.Store _ -> cv.stores <- (l, List.length cv.stores) :: cv.stores
                | Tac.Bin _ | Tac.Fbin _ | Tac.Cmp _ | Tac.Un _ | Tac.Load _
                | Tac.Phi _ ->
                    ());
                emit cv { Hb.hop = Hb.Op i; guard = g })
          b.Cfg.instrs;
        Hashtbl.replace cv.out_maps l !map;
        (* 4. terminator: record edge guards and exits *)
        (match b.Cfg.term with
        | Tac.Jmp s ->
            if internal_edge region (l, s) then
              Hashtbl.replace cv.edge_guards (l, s) g
            else cv.exits <- (l, Some s, g) :: cv.exits
        | Tac.Cbr { c; if_true; if_false } ->
            let c' = version !map c in
            (* A guard predicate must be *delivered* exactly when this
               block executes, or OR-guards downstream could receive two
               matching tokens and nested guards could fire off-path. A
               condition temp qualifies when its single definition carries
               this block's guard; otherwise (live-in condition, reused
               test from a control-inequivalent block, joined value) a
               predicated gating test is inserted — the paper's
               "predicated test instructions" (Section 3.3). *)
            let c' =
              let qualified =
                match Hashtbl.find_opt cv.def_guard c' with
                | Some (`One dg) -> Hb.guard_equal dg g
                | Some `Many -> false
                | None -> (* live-in *) g = None
              in
              if qualified then c'
              else begin
                let gate = fresh cv in
                emit cv
                  {
                    Hb.hop =
                      Hb.Op
                        (Tac.Cmp
                           {
                             dst = gate;
                             cond = Opcode.Ne;
                             fp = false;
                             a = Tac.T c';
                             b = Tac.C 0L;
                           });
                    guard = g;
                  };
                cv.defined <- Temp.Set.add gate cv.defined;
                gate
              end
            in
            if Label.equal if_true if_false then begin
              if internal_edge region (l, if_true) then
                Hashtbl.replace cv.edge_guards (l, if_true) g
              else cv.exits <- (l, Some if_true, g) :: cv.exits
            end
            else begin
              let handle s pol =
                let eg = Hb.singleton c' pol in
                let node = if internal_edge region (l, s) then s else exit_node in
                cv.cond_edges <- (l, node, eg) :: cv.cond_edges;
                if internal_edge region (l, s) then
                  Hashtbl.replace cv.edge_guards (l, s) (Some eg)
                else cv.exits <- (l, Some s, Some eg) :: cv.exits
              in
              handle if_true true;
              handle if_false false
            end
        | Tac.Ret o ->
            (match o with
            | Some o ->
                let o' = rename_op o in
                let v = fresh cv in
                cv.defined <- Temp.Set.add retq cv.defined;
                map := Temp.Map.add retq v !map;
                Hashtbl.replace cv.out_maps l !map;
                emit cv
                  {
                    Hb.hop = Hb.Op (Tac.Un { dst = v; op = Opcode.Mov; a = o' });
                    guard = g;
                  }
            | None -> ());
            cv.exits <- (l, None, g) :: cv.exits))
      order;
    if !errors <> [] then Error (String.concat "; " !errors)
    else begin
      (* Store nullification (Section 4.2): a store guarded by block B must
         resolve as a null store on every execution that avoids B. The
         executions avoiding B are exactly those traversing a "divergence
         edge" — a conditional edge (a -> s) where B is reachable from [a]
         but not from [s] — and exactly one such edge fires per avoiding
         execution, so one Null_store per divergence edge is well-formed
         under the at-most-one-matching-predicate rule. *)
      let reach_cache : (Label.t, Label.Set.t) Hashtbl.t = Hashtbl.create 16 in
      let rec reachable_from l =
        match Hashtbl.find_opt reach_cache l with
        | Some s -> s
        | None ->
            (* guard against cycles (none should exist): seed with self *)
            Hashtbl.replace reach_cache l (Label.Set.singleton l);
            let s =
              List.fold_left
                (fun acc succ ->
                  if internal_edge region (l, succ) then
                    Label.Set.union acc (reachable_from succ)
                  else acc)
                (Label.Set.singleton l)
                (Cfg.succs cfg l)
            in
            Hashtbl.replace reach_cache l s;
            s
      in
      List.iter
        (fun (src_block, store_idx) ->
          List.iter
            (fun (a, s, eg) ->
              let dooms =
                (* an edge out of the store's own block cannot doom it:
                   the block, and hence the store, already executed *)
                (not (Label.equal a src_block))
                && Label.Set.mem src_block (reachable_from a)
                && (Label.equal s exit_node
                   || not (Label.Set.mem src_block (reachable_from s)))
              in
              if dooms then
                emit cv { Hb.hop = Hb.Null_store store_idx; guard = Some eg })
            cv.cond_edges)
        (List.rev cv.stores);
      let exits = List.rev cv.exits in
      (* 5. block outputs: for every canonical temp defined in the region
         and live across some exit, route the right version to a write *)
      let live_at =
        List.map
          (fun (src, target, eg) ->
            ( (src, target, eg),
              exit_edge_live cfg liveness ~src ~target ~retq ))
          exits
      in
      let out_candidates =
        List.fold_left
          (fun acc (_, live) -> Temp.Set.union acc live)
          Temp.Set.empty live_at
        |> Temp.Set.inter cv.defined
      in
      let houts = ref [] in
      let guarded_def_count = Hashtbl.create 16 in
      List.iter
        (fun hi ->
          match Hb.hop_def hi.Hb.hop with
          | Some d ->
              let cnt, guarded =
                Option.value ~default:(0, false)
                  (Hashtbl.find_opt guarded_def_count d)
              in
              Hashtbl.replace guarded_def_count d
                (cnt + 1, guarded || hi.Hb.guard <> None)
          | None -> ())
        cv.body;
      Temp.Set.iter
        (fun x ->
          let exits_info =
            List.map
              (fun ((src, target, eg), live) ->
                let m =
                  Option.value ~default:Temp.Map.empty
                    (Hashtbl.find_opt cv.out_maps src)
                in
                (eg, Temp.Set.mem x live, version m x, target))
              live_at
          in
          let live_exits = List.filter (fun (_, lv, _, _) -> lv) exits_info in
          let versions =
            List.sort_uniq Temp.compare
              (List.map (fun (_, _, v, _) -> v) live_exits)
          in
          let all_live = List.for_all (fun (_, lv, _, _) -> lv) exits_info in
          match versions with
          | [ v ]
            when all_live
                 && (match Hashtbl.find_opt guarded_def_count v with
                    | Some (1, false) -> true
                    | _ -> false) ->
              (* single unconditional definition reaching every exit *)
              houts := (x, v) :: !houts
          | _ ->
              let x_out = fresh cv in
              List.iter
                (fun (eg, lv, v, _) ->
                  if lv then
                    emit cv
                      {
                        Hb.hop =
                          Hb.Op
                            (Tac.Un { dst = x_out; op = Opcode.Mov; a = Tac.T v });
                        guard = eg;
                      }
                  else
                    emit cv { Hb.hop = Hb.Null_write x_out; guard = eg })
                exits_info;
              houts := (x, x_out) :: !houts)
        out_candidates;
      let hexits =
        List.map
          (fun (_, target, eg) ->
            {
              Hb.eguard = eg;
              etarget =
                (match target with
                | None -> None
                | Some s ->
                    (* exits to the head are the loop back edge *)
                    Some s);
            })
          exits
      in
      let h =
        {
          Hb.hname = region.head;
          body = List.rev cv.body;
          hexits;
          houts = List.rev !houts;
        }
      in
      (match m with
      | Some m ->
          Edge_obs.Metrics.incr m "pass.if_convert.hyperblocks";
          Edge_obs.Metrics.incr ~by:(List.length h.Hb.body) m
            "pass.if_convert.instrs";
          Edge_obs.Metrics.incr
            ~by:
              (List.length
                 (List.filter (fun hi -> Option.is_some hi.Hb.guard) h.Hb.body))
            m "pass.if_convert.guarded_instrs"
      | None -> ());
      Ok h
    end
  end
