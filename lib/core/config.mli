(** Compiler configuration: the paper's Section 6 experiment axes.

    [Bb] compiles one TRIPS block per basic block (no if-conversion;
    conditional control flow uses complementary predicated branches only,
    as on the real hardware). [Hyper] forms hyperblocks; the three
    optimization switches correspond to the paper's intra (predicate
    fanout reduction, Section 5.1), inter (path-sensitive predicate
    removal, Section 5.2) and instruction merging (Section 5.3). *)

type mode = Bb | Hyper

type t = {
  mode : mode;
  opt_fanout : bool;
  opt_path_sensitive : bool;
  opt_merge : bool;
  max_unroll : int;  (** cap on static loop unrolling (Section 3.4) *)
  use_mov4 : bool;  (** build fanout trees with 4-target multicast moves
                        (Section 7 future work; ablation) *)
  max_block_instrs : int;  (** 128 in the TRIPS prototype *)
  aggressive_regions : bool;
      (** unroll and grow regions to fill blocks completely; viable only
          with merging (the Section 5.3 case study) *)
  use_sand : bool;
      (** convert serial predicate-AND chains to short-circuiting [sand]
          folds (Section 7 near-term work) *)
  opt_ineff : bool;
      (** Psi-SSA ineffectuality elimination: delete instructions that
          provably contribute to no output, store, or branch, and drop
          guards proven to be ineffectual predicate deliveries.  Not in
          the paper; on in [both] and every config derived from it. *)
}

val bb : t

val hyper_baseline : t
(** Hyperblocks, no predicate optimizations. *)

val intra : t
val inter : t
val both : t

val merge : t
(** [both] plus disjoint instruction merging. *)

val sand : t
(** [both] plus short-circuit AND chain conversion (Section 7). *)

val hand_optimized : t
(** [merge] with maximal unrolling and block filling — the automated
    equivalent of the paper's hand-optimized genalg (Section 5.3). *)

val name : t -> string
val all_paper_configs : (string * t) list
(** The five configurations of Figure 7, in presentation order. *)
