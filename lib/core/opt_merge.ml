module Hb = Edge_ir.Hblock
module Tac = Edge_ir.Tac
module Temp = Edge_ir.Temp
module Opcode = Edge_isa.Opcode

let negate_cond = function
  | Opcode.Eq -> Opcode.Ne
  | Opcode.Ne -> Opcode.Eq
  | Opcode.Lt -> Opcode.Ge
  | Opcode.Ge -> Opcode.Lt
  | Opcode.Le -> Opcode.Gt
  | Opcode.Gt -> Opcode.Le

(* The guard chain of predicate [p]: the (pred, polarity) pairs that must
   have matched for p's defining test to fire, following singleton guards
   upward. Used to prove two predicate outcomes mutually exclusive. *)
let guard_chain def_sites (body : Hb.hinstr array) p =
  let rec walk p acc seen =
    if Temp.Set.mem p seen then acc
    else
      match Temp.Map.find_opt p def_sites with
      | Some [ i ] -> (
          match body.(i).Hb.guard with
          | Some { Hb.gpol; gpreds = [ q ] } ->
              walk q ((q, gpol) :: acc) (Temp.Set.add p seen)
          | Some _ | None -> acc)
      | Some _ | None -> acc
  in
  walk p [] Temp.Set.empty

(* (p1 matches pol1) and (p2 matches pol2) can never both happen in one
   execution: p2's upward chain passes through (p1, not pol1), or
   symmetrically. *)
let disjoint def_sites body (p1, pol1) (p2, pol2) =
  (not (Temp.equal p1 p2))
  && (List.exists
        (fun (q, pol) -> Temp.equal q p1 && pol <> pol1)
        (guard_chain def_sites body p2)
     || List.exists
          (fun (q, pol) -> Temp.equal q p2 && pol <> pol2)
          (guard_chain def_sites body p1))

let pairwise_disjoint def_sites body pol1 preds1 pol2 preds2 =
  List.for_all
    (fun p1 ->
      List.for_all
        (fun p2 -> disjoint def_sites body (p1, pol1) (p2, pol2))
        preds2)
    preds1

(* All singleton guards mentioning p, and nothing else mentions p as a
   predicate in non-singleton form; needed before flipping p's test. *)
let can_flip (h : Hb.t) def_sites (body : Hb.hinstr array) p =
  let used_as_data =
    List.exists
      (fun hi -> List.exists (Temp.equal p) (Hb.data_uses hi))
      h.Hb.body
  in
  let singleton_only g =
    match g with
    | Some { Hb.gpreds; _ } when List.exists (Temp.equal p) gpreds ->
        List.length gpreds = 1
    | Some _ | None -> true
  in
  let flippable_def =
    match Temp.Map.find_opt p def_sites with
    | Some [ i ] -> (
        match body.(i).Hb.hop with
        | Hb.Op (Tac.Cmp _) -> true
        | Hb.Op _ | Hb.Sand _ | Hb.Null_write _ | Hb.Null_store _ -> false)
    | Some _ | None -> false
  in
  flippable_def && (not used_as_data)
  && List.for_all (fun hi -> singleton_only hi.Hb.guard) h.Hb.body
  && List.for_all (fun e -> singleton_only e.Hb.eguard) h.Hb.hexits

let flip_pred (h : Hb.t) def_sites p =
  let flip_guard g =
    match g with
    | Some { Hb.gpol; gpreds = [ q ] } when Temp.equal q p ->
        Some { Hb.gpol = not gpol; gpreds = [ q ] }
    | g -> g
  in
  h.Hb.body <-
    List.mapi
      (fun i hi ->
        let hi = { hi with Hb.guard = flip_guard hi.Hb.guard } in
        match Temp.Map.find_opt p def_sites with
        | Some [ di ] when di = i -> (
            match hi.Hb.hop with
            | Hb.Op (Tac.Cmp c) ->
                { hi with Hb.hop = Hb.Op (Tac.Cmp { c with cond = negate_cond c.cond }) }
            | Hb.Op _ | Hb.Sand _ | Hb.Null_write _ | Hb.Null_store _ -> hi)
        | Some _ | None -> hi)
      h.Hb.body;
  h.Hb.hexits <-
    List.map (fun e -> { e with Hb.eguard = flip_guard e.Hb.eguard }) h.Hb.hexits

(* Attempt to merge guards g1 and g2 of two lexically equal instructions.
   Returns the merged guard, possibly after flipping a test (category 3,
   applied via [flip] callback). *)
let merge_guards (h : Hb.t) def_sites body g1 g2 =
  match (g1, g2) with
  | Some { Hb.gpol = pol1; gpreds = [ p1 ] }, Some { Hb.gpol = pol2; gpreds = [ p2 ] }
    when Temp.equal p1 p2 && pol1 <> pol2 -> (
      (* category 1: fires on either polarity of p1 = fires when the test
         fires; take the guard of the defining test *)
      match Temp.Map.find_opt p1 def_sites with
      | Some [ i ] -> Some body.(i).Hb.guard
      | Some _ | None -> None)
  | Some { Hb.gpol = pol1; gpreds = preds1 }, Some { Hb.gpol = pol2; gpreds = preds2 }
    when pol1 = pol2 ->
      (* category 2 *)
      if pairwise_disjoint def_sites body pol1 preds1 pol2 preds2 then
        Some
          (Some
             { Hb.gpol = pol1; gpreds = List.sort_uniq Temp.compare (preds1 @ preds2) })
      else None
  | Some { Hb.gpol = pol1; gpreds = preds1 }, Some { Hb.gpol = pol2; gpreds = [ p2 ] }
    when pol1 <> pol2 ->
      (* category 3: flip p2's test, then category 2 *)
      if
        can_flip h def_sites body p2
        && pairwise_disjoint def_sites body pol1 preds1 (not pol2) [ p2 ]
      then begin
        flip_pred h def_sites p2;
        Some
          (Some
             { Hb.gpol = pol1; gpreds = List.sort_uniq Temp.compare (p2 :: preds1) })
      end
      else None
  | _ -> None

let hop_key hop =
  match hop with
  | Hb.Op (Tac.Store _) | Hb.Op (Tac.Load _) -> None (* keep LSID identity *)
  | Hb.Op i -> Some (Format.asprintf "op:%a" Tac.pp_instr i)
  | Hb.Sand { dst; a; b } -> Some (Printf.sprintf "sand:%d:%d:%d" dst a b)
  | Hb.Null_write t -> Some (Printf.sprintf "nw:%d" t)
  | Hb.Null_store i -> Some (Printf.sprintf "ns:%d" i)

let merge_body (h : Hb.t) =
  let eliminated = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    let body = Array.of_list h.Hb.body in
    let def_sites = Hb.def_sites h in
    let groups = Hashtbl.create 16 in
    Array.iteri
      (fun i hi ->
        match hop_key hi.Hb.hop with
        | Some k ->
            Hashtbl.replace groups k
              (i :: Option.value ~default:[] (Hashtbl.find_opt groups k))
        | None -> ())
      body;
    let to_delete = Hashtbl.create 8 in
    Hashtbl.iter
      (fun _ idxs ->
        match List.rev idxs with
        | i :: rest when not !progress ->
            List.iter
              (fun j ->
                if (not !progress) && not (Hashtbl.mem to_delete j) then begin
                  match
                    merge_guards h def_sites body body.(i).Hb.guard
                      body.(j).Hb.guard
                  with
                  | Some merged ->
                      (* re-read body in case a flip rewrote it *)
                      let cur = Array.of_list h.Hb.body in
                      cur.(i) <- { (cur.(i)) with Hb.guard = merged };
                      Hashtbl.replace to_delete j ();
                      h.Hb.body <- Array.to_list cur;
                      incr eliminated;
                      progress := true
                  | None -> ()
                end)
              rest
        | _ -> ())
      groups;
    if Hashtbl.length to_delete > 0 then
      h.Hb.body <-
        List.filteri (fun i _ -> not (Hashtbl.mem to_delete i)) h.Hb.body
  done;
  !eliminated

let merge_exits (h : Hb.t) =
  let eliminated = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    let body = Array.of_list h.Hb.body in
    let def_sites = Hb.def_sites h in
    let exits = Array.of_list h.Hb.hexits in
    let n = Array.length exits in
    (try
       for i = 0 to n - 1 do
         for j = i + 1 to n - 1 do
           if exits.(i).Hb.etarget = exits.(j).Hb.etarget then begin
             match
               merge_guards h def_sites body exits.(i).Hb.eguard
                 exits.(j).Hb.eguard
             with
             | Some merged ->
                 (* re-read hexits in case a flip rewrote their guards *)
                 let keep =
                   List.filteri (fun k _ -> k <> j) h.Hb.hexits
                 in
                 h.Hb.hexits <-
                   List.mapi
                     (fun k e -> if k = i then { e with Hb.eguard = merged } else e)
                     keep;
                 incr eliminated;
                 progress := true;
                 raise Exit
             | None -> ()
           end
         done
       done
     with Exit -> ())
  done;
  !eliminated

let run ?m (h : Hb.t) =
  let body = merge_body h in
  let exits = merge_exits h in
  match m with
  | Some m ->
      Edge_obs.Metrics.incr ~by:body m "pass.merge.instrs_merged";
      Edge_obs.Metrics.incr ~by:exits m "pass.merge.exits_merged"
  | None -> ()

