(* Ineffectuality elimination over the Psi-SSA analysis (not in the
   paper; the "dynamic ineffectuality" work suggests the prize).  The
   analysis ([Edge_ir.Psi_ssa.ineffectuality]) proves per def site the
   BDD region on which its firing can still contribute to a store, a
   block output, or an exit decision; this pass applies the two legal
   transforms as one planned rewrite per block:

     - delete every site whose effectual region is empty.  A site that
       can fault (load, div, rem) is only deleted when it provably
       never fires at all — deleting a firing-but-unused load would
       erase an exception the program could raise.
     - drop the guard of any surviving site whose unguarded fire
       region equals its guarded one (the predicate delivery is
       ineffectual) — the BDD-implication generalization of
       opt_fanout's syntactic implicit-predication rule, which shrinks
       the predicate fanout trees feeding those sites.

   Two policy repairs keep the block model intact:

     - a deleted store takes its Null_stores with it (the obligation
       disappears), and surviving Null_store indices are renumbered to
       the new store positions;
     - a temp still named by surviving code (a data operand, a kept
       guard, an exit guard, or an hout producer entry) keeps at least
       one def site: [Pgate] models a producer-less temp as an
       always-available live-in register read, so emptying a def-site
       list would change the model out from under the survivors.  The
       kept site provably never fires, so it costs no dynamic work.

   An inconclusive analysis (BDD budget, fixpoint divergence) skips the
   block — never a verdict.  [findings] is the same plan as a report
   (the tsim/dfpd lint mode): what would be deleted or unguarded,
   without mutating anything. *)

module Hb = Edge_ir.Hblock
module Tac = Edge_ir.Tac
module Temp = Edge_ir.Temp
module Bdd = Edge_ir.Bdd
module Psi = Edge_ir.Psi_ssa
module Pgate = Edge_ir.Pgate

type plan = { pdead : int list; pdrops : int list }

exception Breach of string
(** A cross-validation hook rejected a plan: the exponential oracle
    disproved a verdict the BDD analysis claimed.  The message is a
    rendered [check\[pass=opt_ineff …\]] diagnostic so oracle harnesses
    classify it as a checker breach. *)

(* The fuzz oracle installs its enumerator here ([Ineff_oracle]): every
   computed plan is re-proved by exhaustive path enumeration before
   anything acts on it.  Set once at module init, read-only afterwards
   (worker domains share it). *)
let cross_validate : (Hb.t -> plan -> (unit, string) result) option ref =
  ref None

(* test hook: extra body positions forced into the dead set, to prove
   the enumerator cross-validation catches bogus verdicts *)
let force_dead : int list ref = ref []

let plan (h : Hb.t) : (plan, string) result =
  match Psi.ineffectuality h with
  | Error msg -> Error msg
  | Ok iv ->
      let g = iv.Psi.pg in
      let body = g.Pgate.body in
      let dead = Hashtbl.create 16 in
      List.iter
        (fun i ->
          let deletable =
            match body.(i).Hb.hop with
            | Hb.Op instr when Tac.can_raise instr ->
                (* fault preservation: only if it never fires *)
                Bdd.is_false g.Pgate.e.(i)
            | _ -> true
          in
          if deletable then Hashtbl.replace dead i ())
        iv.Psi.dead;
      List.iter
        (fun i -> if i >= 0 && i < Array.length body then Hashtbl.replace dead i ())
        !force_dead;
      (* a deleted store takes its null stores with it *)
      Array.iteri
        (fun k si ->
          if Hashtbl.mem dead si then
            Array.iteri
              (fun i hi ->
                match hi.Hb.hop with
                | Hb.Null_store k' when k' = k -> Hashtbl.replace dead i ()
                | _ -> ())
              body)
        g.Pgate.store_positions;
      let drops = Hashtbl.create 16 in
      List.iter
        (fun i -> if not (Hashtbl.mem dead i) then Hashtbl.replace drops i ())
        iv.Psi.droppable;
      (* never empty the def-site list of a temp surviving code still
         names; resurrecting a site keeps its own references alive, so
         iterate to closure *)
      let sites = g.Pgate.sites in
      let changed = ref true in
      while !changed do
        changed := false;
        let refs = ref Temp.Set.empty in
        let name t = refs := Temp.Set.add t !refs in
        Array.iteri
          (fun j hi ->
            if not (Hashtbl.mem dead j) then begin
              List.iter name (Hb.data_uses hi);
              if not (Hashtbl.mem drops j) then
                List.iter name (Hb.guard_uses hi.Hb.guard)
            end)
          body;
        List.iter
          (fun ex -> List.iter name (Hb.guard_uses ex.Hb.eguard))
          h.Hb.hexits;
        List.iter (fun (_, prod) -> name prod) h.Hb.houts;
        Temp.Set.iter
          (fun t ->
            match Temp.Map.find_opt t sites with
            | None | Some [] -> ()
            | Some ss ->
                if List.for_all (Hashtbl.mem dead) ss then begin
                  Hashtbl.remove dead (List.hd ss);
                  changed := true
                end)
          !refs
      done;
      let pdead = ref [] and pdrops = ref [] in
      Array.iteri
        (fun i _ ->
          if Hashtbl.mem dead i then pdead := i :: !pdead
          else if Hashtbl.mem drops i then pdrops := i :: !pdrops)
        body;
      let p = { pdead = List.rev !pdead; pdrops = List.rev !pdrops } in
      (match !cross_validate with
      | Some f when p.pdead <> [] || p.pdrops <> [] -> (
          match f h p with Ok () -> () | Error msg -> raise (Breach msg))
      | _ -> ());
      Ok p

(* ---------------- lint findings ---------------------------------- *)

type finding = {
  fblock : string;
  fsite : int;
  fkind : [ `Dead | `Guard_drop ];
  fpred : string;  (** guard rendering, "-" when unguarded *)
  fdetail : string;  (** the instruction *)
}

let render f =
  Edge_check.Diag.lint_line ~block:f.fblock
    ~at:(Printf.sprintf "I%d" f.fsite)
    ~pred:f.fpred
    ((match f.fkind with
     | `Dead -> "provably ineffectual (feeds no output, store, or branch): "
     | `Guard_drop -> "guard is an ineffectual predicate delivery: ")
    ^ f.fdetail)

let findings (h : Hb.t) : finding list =
  match plan h with
  | Error _ -> []
  | Ok p ->
      let body = Array.of_list h.Hb.body in
      let mk kind i =
        let hi = body.(i) in
        let pred =
          match hi.Hb.guard with
          | None -> "-"
          | Some _ -> Format.asprintf "%a" Hb.pp_guard hi.Hb.guard
        in
        {
          fblock = h.Hb.hname;
          fsite = i;
          fkind = kind;
          fpred = pred;
          fdetail = Format.asprintf "%a" Hb.pp_hinstr hi;
        }
      in
      List.map (mk `Dead) p.pdead @ List.map (mk `Guard_drop) p.pdrops

(* ---------------- the rewrite ------------------------------------ *)

let apply (h : Hb.t) (p : plan) =
  let body = Array.of_list h.Hb.body in
  let dead = Hashtbl.create 16 and drops = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace dead i ()) p.pdead;
  List.iter (fun i -> Hashtbl.replace drops i ()) p.pdrops;
  (* store indices are positional: renumber survivors.  The lookup can
     only miss for a null whose store was deleted, and the plan's
     cascade already deleted those nulls. *)
  let new_idx_of_site = Hashtbl.create 8 in
  let old_store_pos = ref [] in
  let next = ref 0 in
  Array.iteri
    (fun i hi ->
      match hi.Hb.hop with
      | Hb.Op (Tac.Store _) ->
          old_store_pos := i :: !old_store_pos;
          if not (Hashtbl.mem dead i) then begin
            Hashtbl.replace new_idx_of_site i !next;
            incr next
          end
      | _ -> ())
    body;
  let old_store_pos = Array.of_list (List.rev !old_store_pos) in
  let renumber k = Hashtbl.find new_idx_of_site old_store_pos.(k) in
  let body' =
    List.concat
      (List.mapi
         (fun i hi ->
           if Hashtbl.mem dead i then []
           else
             let hi =
               if Hashtbl.mem drops i then { hi with Hb.guard = None } else hi
             in
             match hi.Hb.hop with
             | Hb.Null_store k ->
                 [ { hi with Hb.hop = Hb.Null_store (renumber k) } ]
             | _ -> [ hi ])
         (Array.to_list body))
  in
  h.Hb.body <- body'

let run ?m (h : Hb.t) =
  let incr ?by key =
    match m with
    | Some m -> Edge_obs.Metrics.incr ?by m (Pass_id.counter Pass_id.Opt_ineff key)
    | None -> ()
  in
  match plan h with
  | Error _ -> incr "blocks_skipped"
  | Ok p ->
      if p.pdead <> [] || p.pdrops <> [] then begin
        incr ~by:(List.length p.pdead) "instrs_deleted";
        incr ~by:(List.length p.pdrops) "guards_dropped";
        apply h p
      end
