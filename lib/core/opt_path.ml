module Hb = Edge_ir.Hblock
module Tac = Edge_ir.Tac
module Temp = Edge_ir.Temp
module Psi = Edge_ir.Psi_ssa

(* The pass now reads the Psi-SSA view: an output temp's psi-node
   argument list is exactly its definition sites (guarded output moves,
   direct producers) plus its explicit nulls, each with the predicate
   it delivers under — what the old code recomputed by scanning the
   body per output.  Classify the arguments of [x_out]'s psi. *)
type out_defs = {
  movs : (int * Temp.t) list;  (* body position, source version *)
  nulls : int list;  (* body positions of Null_write *)
  others : int;  (* defs that are not moves (direct producer case) *)
}

let classify_psi (vw : Psi.view) (args : Psi.psi_arg list) =
  let movs = ref [] and nulls = ref [] and others = ref 0 in
  List.iter
    (fun (a : Psi.psi_arg) ->
      if a.Psi.anull then nulls := a.Psi.asite :: !nulls
      else
        match vw.Psi.vbody.(a.Psi.asite).Hb.hop with
        | Hb.Op (Tac.Un { op = Edge_isa.Opcode.Mov; a = Tac.T src; _ }) ->
            movs := (a.Psi.asite, src) :: !movs
        | _ -> incr others)
    args;
  { movs = List.rev !movs; nulls = List.rev !nulls; others = !others }

let analyze_block (h : Hb.t) =
  let vw = Psi.view h in
  List.filter_map
    (fun (x, x_out) ->
      match Psi.psi vw x_out with
      | None -> None (* a single delivery never needs promotion *)
      | Some args -> (
          let d = classify_psi vw args in
          if d.others > 0 || d.movs = [] then None
          else
            let sources =
              List.sort_uniq Temp.compare (List.map snd d.movs)
            in
            match sources with
            | [ v ] when d.nulls <> [] || List.length d.movs > 1 -> (
                (* single version feeds every live exit; candidate *)
                match Psi.promotable_chain vw v with
                | Some chain -> Some (x, x_out, v, d, chain)
                | None -> None)
            | _ -> None))
    h.Hb.houts

let promotions h = List.length (analyze_block h)

let run ?m hblocks _cfg _liveness ~retq =
  ignore retq;
  List.iter
    (fun (h : Hb.t) ->
      let candidates = analyze_block h in
      if candidates <> [] then begin
        (match m with
        | Some m ->
            Edge_obs.Metrics.incr
              ~by:(List.length candidates)
              m
              (Pass_id.counter Pass_id.Opt_path "outputs_promoted")
        | None -> ());
        let body = Array.of_list h.Hb.body in
        let kill = Hashtbl.create 16 in
        let unguard = Hashtbl.create 16 in
        let replaced = ref [] in
        List.iter
          (fun (x, x_out, v, d, chain) ->
            ignore x;
            (* drop the per-exit moves and nulls; add one unconditional
               copy; unguard the upward chain *)
            List.iter (fun (i, _) -> Hashtbl.replace kill i ()) d.movs;
            List.iter (fun i -> Hashtbl.replace kill i ()) d.nulls;
            List.iter (fun i -> Hashtbl.replace unguard i ()) chain;
            replaced :=
              {
                Hb.hop =
                  Hb.Op
                    (Tac.Un { dst = x_out; op = Edge_isa.Opcode.Mov; a = Tac.T v });
                guard = None;
              }
              :: !replaced)
          candidates;
        let new_body =
          List.concat
            (List.mapi
               (fun i hi ->
                 if Hashtbl.mem kill i then []
                 else if Hashtbl.mem unguard i then
                   [ { hi with Hb.guard = None } ]
                 else [ hi ])
               (Array.to_list body))
          @ List.rev !replaced
        in
        h.Hb.body <- new_body
      end)
    hblocks
