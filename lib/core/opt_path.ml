module Hb = Edge_ir.Hblock
module Tac = Edge_ir.Tac
module Temp = Edge_ir.Temp

(* For output temp [x_out], collect its definition sites: output moves
   (guarded copies of some version) and null writes. *)
type out_defs = {
  movs : (int * Temp.t) list;  (* body position, source version *)
  nulls : int list;  (* body positions of Null_write *)
  others : int;  (* defs that are not moves (direct producer case) *)
}

let defs_of_out (body : Hb.hinstr array) x_out =
  let movs = ref [] and nulls = ref [] and others = ref 0 in
  Array.iteri
    (fun i hi ->
      match hi.Hb.hop with
      | Hb.Op (Tac.Un { dst; op = Edge_isa.Opcode.Mov; a = Tac.T src })
        when Temp.equal dst x_out ->
          movs := (i, src) :: !movs
      | Hb.Null_write t when Temp.equal t x_out -> nulls := i :: !nulls
      | Hb.Op i -> (
          match Tac.def i with
          | Some d when Temp.equal d x_out -> incr others
          | Some _ | None -> ())
      | Hb.Sand { dst; _ } -> if Temp.equal dst x_out then incr others
      | Hb.Null_write _ | Hb.Null_store _ -> ())
    body;
  { movs = List.rev !movs; nulls = List.rev !nulls; others = !others }

(* Can the upward data dependence chain rooted at [v] be promoted to
   unconditional execution? Walk single-def, exception-free instructions;
   a chain root is a live-in or constant. Returns the body positions whose
   guards must be removed, or None if promotion is illegal. *)
let promotable_chain (body : Hb.hinstr array) def_sites pred_temps v =
  let visited = ref Temp.Set.empty in
  let acc = ref [] in
  let rec walk v =
    if Temp.Set.mem v !visited then true
    else begin
      visited := Temp.Set.add v !visited;
      match Temp.Map.find_opt v def_sites with
      | None | Some [] -> true (* live-in or constant: always available *)
      | Some [ i ] -> (
          match body.(i).Hb.hop with
          | Hb.Null_write _ | Hb.Null_store _ | Hb.Sand _ -> false
          | Hb.Op instr ->
              (not (Tac.can_raise instr))
              && (not (Temp.Set.mem v pred_temps))
              && begin
                   acc := i :: !acc;
                   List.for_all walk (Tac.uses instr)
                 end)
      | Some _ -> false (* joins carry path-dependent values *)
    end
  in
  if walk v then Some !acc else None

let pred_temps_of (h : Hb.t) =
  let s = ref Temp.Set.empty in
  let add g = List.iter (fun p -> s := Temp.Set.add p !s) (Hb.guard_uses g) in
  List.iter (fun hi -> add hi.Hb.guard) h.Hb.body;
  List.iter (fun e -> add e.Hb.eguard) h.Hb.hexits;
  !s

let analyze_block (h : Hb.t) =
  let body = Array.of_list h.Hb.body in
  let def_sites = Hb.def_sites h in
  let pred_temps = pred_temps_of h in
  List.filter_map
    (fun (x, x_out) ->
      let d = defs_of_out body x_out in
      if d.others > 0 || d.movs = [] then None
      else
        let sources = List.sort_uniq Temp.compare (List.map snd d.movs) in
        match sources with
        | [ v ] when d.nulls <> [] || List.length d.movs > 1 -> (
            (* single version feeds every live exit; candidate *)
            match promotable_chain body def_sites pred_temps v with
            | Some chain -> Some (x, x_out, v, d, chain)
            | None -> None)
        | _ -> None)
    h.Hb.houts

let promotions h = List.length (analyze_block h)

let run ?m hblocks _cfg _liveness ~retq =
  ignore retq;
  List.iter
    (fun (h : Hb.t) ->
      let candidates = analyze_block h in
      if candidates <> [] then begin
        (match m with
        | Some m ->
            Edge_obs.Metrics.incr
              ~by:(List.length candidates)
              m "pass.path.outputs_promoted"
        | None -> ());
        let body = Array.of_list h.Hb.body in
        let kill = Hashtbl.create 16 in
        let unguard = Hashtbl.create 16 in
        let replaced = ref [] in
        List.iter
          (fun (x, x_out, v, d, chain) ->
            ignore x;
            (* drop the per-exit moves and nulls; add one unconditional
               copy; unguard the upward chain *)
            List.iter (fun (i, _) -> Hashtbl.replace kill i ()) d.movs;
            List.iter (fun i -> Hashtbl.replace kill i ()) d.nulls;
            List.iter (fun i -> Hashtbl.replace unguard i ()) chain;
            replaced :=
              {
                Hb.hop =
                  Hb.Op
                    (Tac.Un { dst = x_out; op = Edge_isa.Opcode.Mov; a = Tac.T v });
                guard = None;
              }
              :: !replaced)
          candidates;
        let new_body =
          List.concat
            (List.mapi
               (fun i hi ->
                 if Hashtbl.mem kill i then []
                 else if Hashtbl.mem unguard i then
                   [ { hi with Hb.guard = None } ]
                 else [ hi ])
               (Array.to_list body))
          @ List.rev !replaced
        in
        h.Hb.body <- new_body
      end)
    hblocks
