(* The single source of truth for pass identity.  The checker hook in
   [Driver] derives the [check[pass=...]] attribution from the same
   variant that owns the pass's ["pass.<prefix>.*"] counter namespace,
   so diagnostics and counters cannot drift apart when passes are
   added or reordered.  [Driver.generate] asserts that every counter it
   ships parses back through [of_counter]. *)

type t =
  | If_convert
  | Opt_classic
  | Opt_path
  | Opt_fanout
  | Opt_merge
  | Opt_sand
  | Opt_hclean
  | Opt_ineff
  | Regalloc
  | Codegen
  | Schedule

let all =
  [
    If_convert;
    Opt_classic;
    Opt_path;
    Opt_fanout;
    Opt_merge;
    Opt_sand;
    Opt_hclean;
    Opt_ineff;
    Regalloc;
    Codegen;
    Schedule;
  ]

(* the [check[pass=...]] attribution string *)
let name = function
  | If_convert -> "if_convert"
  | Opt_classic -> "opt_classic"
  | Opt_path -> "opt_path"
  | Opt_fanout -> "opt_fanout"
  | Opt_merge -> "opt_merge"
  | Opt_sand -> "opt_sand"
  | Opt_hclean -> "opt_hclean"
  | Opt_ineff -> "opt_ineff"
  | Regalloc -> "regalloc"
  | Codegen -> "codegen"
  | Schedule -> "schedule"

(* the counter namespace the pass owns: "pass.<prefix>.<metric>" *)
let counter_prefix = function
  | If_convert -> "if_convert"
  | Opt_classic -> "classic"
  | Opt_path -> "path"
  | Opt_fanout -> "fanout"
  | Opt_merge -> "merge"
  | Opt_sand -> "sand"
  | Opt_hclean -> "hclean"
  | Opt_ineff -> "ineff"
  | Regalloc -> "regalloc"
  | Codegen -> "codegen"
  | Schedule -> "schedule"

let counter t metric = Printf.sprintf "pass.%s.%s" (counter_prefix t) metric

let of_name s = List.find_opt (fun t -> String.equal (name t) s) all

let of_counter key =
  match String.split_on_char '.' key with
  | "pass" :: prefix :: _ :: _ ->
      List.find_opt (fun t -> String.equal (counter_prefix t) prefix) all
  | _ -> None
