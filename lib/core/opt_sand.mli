(** Short-circuit AND chain conversion (the paper's Section 7 near-term
    extension, automated).

    The implicit predicate-AND chains of Section 3.4 serialize guard
    resolution: test k fires only after test k-1's predicate routes to
    it. This pass finds such chains — test t_k guarded {true; [p_{k-1}]}
    where p_{k-1} is the previous test's result — unguards the tests so
    they evaluate as soon as their (still chain-guarded) data arrives,
    and folds them with [sand]: s_k = sand(s_{k-1}, t_k). C semantics
    make this safe: when the prefix is false, [sand] fires without
    demanding t_k, whose operands may never arrive.

    True-polarity consumers of p_k are re-guarded on the conjunction s_k;
    false-polarity consumers (the chain's exit edges) are re-guarded on
    e_k = sand(s_{k-1}, not t_k), which fires true exactly on the first
    divergence — an inverted copy of the test is materialized when
    needed.

    Conservative conditions: chain predicates must be singleton guards
    everywhere, never used as data, and each test's transitive data
    producers must be guarded only by earlier chain predicates (so a true
    prefix guarantees the test eventually fires). *)

val run :
  ?m:Edge_obs.Metrics.t -> Edge_ir.Hblock.t -> gen:Edge_ir.Temp.Gen.t -> int
(** Returns the number of chains converted; [m] (optional) receives the
    same count as ["pass.sand.chains_converted"]. *)
