(** Predicate fanout reduction (Section 5.1) — the paper's *intra*
    configuration.

    Removes the explicit predicate from every instruction satisfying the
    paper's four conditions: (1) not a branch or store, (2) does not
    define a predicate, (3) does not define a block output (register
    live-out), (4) is not one of multiple definitions of a temp (the SSA
    φ condition). What remains guarded are dependence-chain heads and
    block outputs; interior instructions become implicitly predicated —
    they can only fire when a guarded ancestor fires — or safely
    speculative (hoisted), with the exception bit covering faulting
    speculation (Section 4.4). The payoff is fewer predicate consumers,
    hence smaller software fanout trees (fewer move instructions). *)

val run : ?m:Edge_obs.Metrics.t -> Edge_ir.Hblock.t -> unit
(** [m] (optional) receives the pass counter
    ["pass.fanout.guards_removed"]. *)

val removable : Edge_ir.Hblock.t -> int
(** Number of guards the pass would remove (for reporting). *)
