(** Spatial instruction scheduling.

    Maps each instruction of a TRIPS block onto the execution tiles of a
    machine description (by default {!Edge_isa.Machine_desc.default},
    the 4×4 grid with 8 reservation-station slots per tile). A greedy
    critical-path-first placer in the spirit of spatial path scheduling:
    instructions are placed, most critical first, at the tile minimizing
    the weighted operand-network distance to their producers, the
    register file, and the memory interface, as charged by the machine's
    hop model. The cycle simulator charges the same costs (Section 6). *)

val place : ?machine:Edge_isa.Machine_desc.t -> Edge_isa.Block.t -> int array
(** [place b] returns the tile index for every instruction id. Slot
    capacity ([slots_per_tile] per tile) is respected. Deterministic. *)
