module Hb = Edge_ir.Hblock
module Tac = Edge_ir.Tac
module Temp = Edge_ir.Temp

let analyze (h : Hb.t) =
  (* temps used as predicates anywhere (body guards or exit guards) *)
  let pred_temps = ref Temp.Set.empty in
  let add_guard g =
    List.iter
      (fun p -> pred_temps := Temp.Set.add p !pred_temps)
      (Hb.guard_uses g)
  in
  List.iter (fun hi -> add_guard hi.Hb.guard) h.Hb.body;
  List.iter (fun e -> add_guard e.Hb.eguard) h.Hb.hexits;
  (* output producers *)
  let out_producers =
    List.fold_left
      (fun acc (_, prod) -> Temp.Set.add prod acc)
      Temp.Set.empty h.Hb.houts
  in
  (* multi-def temps *)
  let def_count = Hashtbl.create 16 in
  List.iter
    (fun hi ->
      match Hb.hop_def hi.Hb.hop with
      | Some d ->
          Hashtbl.replace def_count d
            (1 + Option.value ~default:0 (Hashtbl.find_opt def_count d))
      | None -> ())
    h.Hb.body;
  (!pred_temps, out_producers, def_count)

let candidate (pred_temps, out_producers, def_count) hi =
  match (hi.Hb.guard, hi.Hb.hop) with
  | None, _ -> false
  | Some _, (Hb.Null_write _ | Hb.Null_store _ | Hb.Sand _) ->
      false (* nulls are output producers; sands are predicate defs *)
  | Some _, Hb.Op (Tac.Store _) -> false (* condition 1 *)
  | Some _, Hb.Op i -> (
      match Tac.def i with
      | None -> false
      | Some d ->
          (not (Temp.Set.mem d pred_temps)) (* condition 2 *)
          && (not (Temp.Set.mem d out_producers)) (* condition 3 *)
          && Option.value ~default:0 (Hashtbl.find_opt def_count d) <= 1
          (* condition 4 *))

(* Implicit predication is free: an instruction whose data operand can
   only arrive when this guard matched never fires off-path, so dropping
   its explicit guard changes nothing but the predicate fanout. The
   analysis uses the *original* guards — removing an implicit guard does
   not change when the instruction fires, so one pass suffices for whole
   chains. *)
let implicitly_predicated (h : Hb.t) =
  let def_sites = Hb.def_sites h in
  let body = Array.of_list h.Hb.body in
  fun hi ->
    match hi.Hb.guard with
    | None -> false
    | Some _ ->
        List.exists
          (fun t ->
            match Temp.Map.find_opt t def_sites with
            | Some [ d ] -> Hb.guard_equal body.(d).Hb.guard hi.Hb.guard
            | Some _ | None -> false)
          (Hb.data_uses hi)

(* Speculative hoisting trades predicate fanout for wasted execution; it
   only pays for cheap single-cycle operations (the paper notes the
   compiler must weigh losing performance when the predicate computation
   is not the bottleneck, Section 5.1). *)
let hoistable hi =
  match hi.Hb.hop with
  | Hb.Op i -> Tac.is_cheap i
  | Hb.Sand _ | Hb.Null_write _ | Hb.Null_store _ -> false

let removable h =
  let info = analyze h in
  let implicit = implicitly_predicated h in
  List.length
    (List.filter
       (fun hi -> candidate info hi && (implicit hi || hoistable hi))
       h.Hb.body)

let run ?m (h : Hb.t) =
  let info = analyze h in
  let implicit = implicitly_predicated h in
  let removed = ref 0 in
  h.Hb.body <-
    List.map
      (fun hi ->
        if candidate info hi && (implicit hi || hoistable hi) then begin
          incr removed;
          { hi with Hb.guard = None }
        end
        else hi)
      h.Hb.body;
  match m with
  | Some m -> Edge_obs.Metrics.incr ~by:!removed m "pass.fanout.guards_removed"
  | None -> ()
