(** If-conversion: a single-entry CFG region becomes one predicated
    hyperblock (Sections 3 and 5 of the paper).

    Control dependences become predicates: each conditional branch's test
    feeds the predicate operands of the instructions control-dependent on
    its edges. Nested control dependence yields the implicit
    predicate-AND chain of Section 3.4 (the guarding test is itself
    predicated); multiple control-dependence edges yield predicate-OR
    guards or, for mixed polarities, a combining constant-generator in
    the style of Figure 6d. Data merges become complementary guarded
    moves (the t5/t6 moves of Figure 4); live-out values become per-exit
    output moves (Figure 6c) unless a single unconditional definition
    reaches every exit. The resulting hyperblock is *naively* predicated
    — every instruction of a predicate block carries its guard — which is
    the paper's Section 6 baseline; the optimizations of Section 5 then
    remove predicates.

    A region containing loop back edges to its own head exits to itself.
    A singleton region degenerates to basic-block code (the paper's BB
    configuration). *)

type region = { head : Edge_ir.Label.t; blocks : Edge_ir.Label.Set.t }

val convert :
  ?m:Edge_obs.Metrics.t ->
  Edge_ir.Cfg.t ->
  Edge_ir.Liveness.t ->
  region ->
  retq:Edge_ir.Temp.t ->
  (Edge_ir.Hblock.t, string) result
(** [retq] is the function-wide canonical temp for the return value
    (allocated once per function, pinned to the result register). [m]
    (optional) receives the pass counters
    ["pass.if_convert.hyperblocks"], ["pass.if_convert.instrs"] and
    ["pass.if_convert.guarded_instrs"]. *)

val exit_edge_live :
  Edge_ir.Cfg.t ->
  Edge_ir.Liveness.t ->
  src:Edge_ir.Label.t ->
  target:Edge_ir.Label.t option ->
  retq:Edge_ir.Temp.t ->
  Edge_ir.Temp.Set.t
(** Liveness across an exit edge; a halt exit keeps only [retq] alive. *)
