module Hb = Edge_ir.Hblock
module Tac = Edge_ir.Tac
module Temp = Edge_ir.Temp
module Opcode = Edge_isa.Opcode

let negate_cond = function
  | Opcode.Eq -> Opcode.Ne
  | Opcode.Ne -> Opcode.Eq
  | Opcode.Lt -> Opcode.Ge
  | Opcode.Ge -> Opcode.Lt
  | Opcode.Le -> Opcode.Gt
  | Opcode.Gt -> Opcode.Le

type chain = { links : Temp.t list (* p_1 .. p_n, n >= 2 *) }

let rec find_chain body def_site guards_ok p acc =
  (* walk forward: find a test guarded {true;[p]} *)
  let next =
    List.find_map
      (fun hi ->
        match (hi.Hb.guard, hi.Hb.hop) with
        | Some { Hb.gpol = true; gpreds = [ q ] }, Hb.Op (Tac.Cmp { dst; _ })
          when Temp.equal q p && guards_ok dst ->
            Some dst
        | _ -> None)
      body
  in
  ignore def_site;
  match next with
  | Some dst -> find_chain body def_site guards_ok dst (dst :: acc)
  | None -> List.rev acc

let convert_chains (h : Hb.t) ~gen =
  let body = h.Hb.body in
  let def_sites = Hb.def_sites h in
  let barr = Array.of_list body in
  (* predicates used as data anywhere disqualify their chains *)
  let used_as_data =
    List.fold_left
      (fun acc hi ->
        List.fold_left (fun a t -> Temp.Set.add t a) acc (Hb.data_uses hi))
      Temp.Set.empty body
  in
  (* every guard mentioning t must be singleton *)
  let singleton_everywhere t =
    let ok g =
      match g with
      | Some { Hb.gpreds; _ } when List.exists (Temp.equal t) gpreds ->
          List.length gpreds = 1
      | _ -> true
    in
    List.for_all (fun hi -> ok hi.Hb.guard) body
    && List.for_all (fun e -> ok e.Hb.eguard) h.Hb.hexits
  in
  let single_def t =
    match Temp.Map.find_opt t def_sites with Some [ i ] -> Some i | _ -> None
  in
  let is_test t =
    match single_def t with
    | Some i -> (
        match barr.(i).Hb.hop with
        | Hb.Op (Tac.Cmp _) -> true
        | Hb.Op _ | Hb.Sand _ | Hb.Null_write _ | Hb.Null_store _ -> false)
    | None -> false
  in
  let guards_ok t =
    is_test t
    && (not (Temp.Set.mem t used_as_data))
    && singleton_everywhere t
  in
  (* transitive data producers of [t]'s defining test must be guarded only
     by predicates in [allowed] (with true polarity) or unguarded *)
  let producers_guarded_by allowed t =
    let rec walk seen temp =
      if Temp.Set.mem temp seen then true
      else
        match single_def temp with
        | None -> true (* live-in or constant *)
        | Some i ->
            let hi = barr.(i) in
            let guard_fine =
              match hi.Hb.guard with
              | None -> true
              | Some { Hb.gpol = true; gpreds = [ q ] } ->
                  List.exists (Temp.equal q) allowed
              | Some _ -> false
            in
            guard_fine
            && List.for_all (walk (Temp.Set.add temp seen)) (Hb.data_uses hi)
        in
    match single_def t with
    | None -> false
    | Some i -> List.for_all (walk Temp.Set.empty) (Hb.data_uses barr.(i))
  in
  (* chain roots: unpredicated, always-firing tests *)
  let roots =
    List.filter_map
      (fun hi ->
        match (hi.Hb.guard, hi.Hb.hop) with
        | None, Hb.Op (Tac.Cmp { dst; _ })
          when guards_ok dst && producers_guarded_by [] dst ->
            Some dst
        | _ -> None)
      body
  in
  (* False-consumers of a non-head link need a synthesized complement
     test e = sand(prev, !t). For float comparisons no such complement
     exists — NaN compares false under both a cond and its negation, so
     the sand pair (prefix ∧ t, prefix ∧ ¬t) would leave the block with
     no firing branch. (If_false predication on the original test, which
     the unconverted encoding uses, has no such hole.) *)
  let has_false_consumer t =
    let is_false_guard g =
      match g with
      | Some { Hb.gpol = false; gpreds = [ q ] } -> Temp.equal q t
      | _ -> false
    in
    List.exists (fun hi -> is_false_guard hi.Hb.guard) body
    || List.exists (fun e -> is_false_guard e.Hb.eguard) h.Hb.hexits
  in
  let complement_safe links =
    List.for_all
      (fun p ->
        (not (has_false_consumer p))
        ||
        match single_def p with
        | Some i -> (
            match barr.(i).Hb.hop with
            | Hb.Op (Tac.Cmp { fp; _ }) -> not fp
            | _ -> false)
        | None -> false)
      (match links with [] -> [] | _ :: tl -> tl)
  in
  let chains =
    List.filter_map
      (fun root ->
        let links = find_chain body def_sites guards_ok root [ root ] in
        (* verify operand-guarding along the chain *)
        let rec verify allowed = function
          | [] -> true
          | p :: rest ->
              producers_guarded_by allowed p && verify (p :: allowed) rest
        in
        if List.length links >= 3 && verify [] links && complement_safe links
        then Some { links }
        else None)
      roots
  in
  if chains = [] then 0
  else begin
    let converted = ref 0 in
    List.iter
      (fun { links } ->
        incr converted;
        (* s_1 = p_1; s_k = sand(s_{k-1}, t_k) *)
        let conj : (Temp.t, Temp.t) Hashtbl.t = Hashtbl.create 8 in
        let excl : (Temp.t, Temp.t) Hashtbl.t = Hashtbl.create 8 in
        let new_instrs = ref [] in
        let false_consumers = Hashtbl.create 8 in
        let note_false t = Hashtbl.replace false_consumers t () in
        List.iter
          (fun hi ->
            match hi.Hb.guard with
            | Some { Hb.gpol = false; gpreds = [ q ] }
              when List.exists (Temp.equal q) links ->
                note_false q
            | _ -> ())
          h.Hb.body;
        List.iter
          (fun e ->
            match e.Hb.eguard with
            | Some { Hb.gpol = false; gpreds = [ q ] }
              when List.exists (Temp.equal q) links ->
                note_false q
            | _ -> ())
          h.Hb.hexits;
        let prev = ref (List.hd links) in
        Hashtbl.replace conj (List.hd links) (List.hd links);
        List.iteri
          (fun k p ->
            if k > 0 then begin
              (* unguard the test *)
              let s = Temp.Gen.fresh gen in
              new_instrs :=
                { Hb.hop = Hb.Sand { dst = s; a = !prev; b = p }; guard = None }
                :: !new_instrs;
              Hashtbl.replace conj p s;
              (* exit predicate for false consumers: e = sand(prev, !t) *)
              if Hashtbl.mem false_consumers p then begin
                match single_def p with
                | Some di -> (
                    match barr.(di).Hb.hop with
                    | Hb.Op (Tac.Cmp c) ->
                        let tinv = Temp.Gen.fresh gen in
                        let e = Temp.Gen.fresh gen in
                        new_instrs :=
                          {
                            Hb.hop =
                              Hb.Op
                                (Tac.Cmp { c with dst = tinv; cond = negate_cond c.cond });
                            guard = None;
                          }
                          :: {
                               Hb.hop = Hb.Sand { dst = e; a = !prev; b = tinv };
                               guard = None;
                             }
                          :: !new_instrs;
                        Hashtbl.replace excl p e
                    | _ -> assert false)
                | None -> assert false
              end;
              prev := s
            end)
          links;
        (* rewrite guards: true-consumers of p_k -> (conj_k, true);
           false-consumers -> (excl_k, true); unguard the chain tests *)
        let in_links q = List.exists (Temp.equal q) links in
        let rewrite_guard g =
          match g with
          | Some { Hb.gpol = true; gpreds = [ q ] } when in_links q ->
              Some (Hb.singleton (Hashtbl.find conj q) true)
          | Some { Hb.gpol = false; gpreds = [ q ] }
            when in_links q && (not (Temp.equal q (List.hd links))) ->
              Some (Hb.singleton (Hashtbl.find excl q) true)
          | g -> g
        in
        h.Hb.body <-
          List.map
            (fun hi ->
              match (Hb.hop_def hi.Hb.hop, hi.Hb.guard) with
              | Some d, Some { Hb.gpol = true; gpreds = [ q ] }
                when in_links d && in_links q ->
                  (* the chained test itself: drop its guard *)
                  { hi with Hb.guard = None }
              | _ -> { hi with Hb.guard = rewrite_guard hi.Hb.guard })
            h.Hb.body;
        h.Hb.body <- h.Hb.body @ List.rev !new_instrs;
        h.Hb.hexits <-
          List.map
            (fun e -> { e with Hb.eguard = rewrite_guard e.Hb.eguard })
            h.Hb.hexits)
      chains;
    !converted
  end

let run ?m h ~gen =
  let n = convert_chains h ~gen in
  (match m with
  | Some m -> Edge_obs.Metrics.incr ~by:n m "pass.sand.chains_converted"
  | None -> ());
  n
