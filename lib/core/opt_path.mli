(** Path-sensitive predicate removal (Section 5.2) — the paper's *inter*
    configuration.

    Inter-block liveness already told if-conversion which exits each
    register is live across; this pass exploits the cases where a value is
    live on some paths only. A block output whose live exits all see the
    same version, produced by an exception-free upward dependence chain,
    is promoted to execute unconditionally: the per-exit output moves and
    null writes disappear, the chain's guards are removed, and the write
    resolves as early as the chain allows — the early branch/store
    resolution the paper credits for autcor00/conven00/iirflt01. *)

val run :
  ?m:Edge_obs.Metrics.t ->
  Edge_ir.Hblock.t list ->
  Edge_ir.Cfg.t ->
  Edge_ir.Liveness.t ->
  retq:Edge_ir.Temp.t ->
  unit
(** [m] (optional) receives the pass counter
    ["pass.path.outputs_promoted"]. *)

val promotions : Edge_ir.Hblock.t -> int
(** How many outputs of this block are promotable (for reporting). *)
