module Hb = Edge_ir.Hblock
module Tac = Edge_ir.Tac
module Temp = Edge_ir.Temp
module Opcode = Edge_isa.Opcode
module Instr = Edge_isa.Instr
module Target = Edge_isa.Target
module Block = Edge_isa.Block

type emitted = {
  block : Edge_isa.Block.t;
  fanout_moves : int;
  explicit_predicates : int;
}

type pending = {
  p_opcode : Opcode.t;
  p_pred : Instr.predication;
  p_imm : int64;
  p_lsid : int;
  p_exit : int;
  p_dst : Temp.t option;  (** value produced, if any *)
  (* operand sources; [`Temp t] wires all defs of [t], [`Const c]
     materializes a constant generator, [`None] leaves the slot empty *)
  p_left : [ `Temp of Temp.t | `Const of int64 | `None ];
  p_right : [ `Temp of Temp.t | `Const of int64 | `None ];
  p_guards : Temp.t list;  (** temps whose defs feed the predicate slot *)
  p_write : int;  (** write slot this instruction feeds, or -1 *)
}

let imm_ok c = c >= -256L && c <= 255L

let commutative_ibinop = function
  | Opcode.Add | Opcode.Mul | Opcode.And | Opcode.Or | Opcode.Xor -> true
  | Opcode.Sub | Opcode.Div | Opcode.Rem | Opcode.Sll | Opcode.Srl
  | Opcode.Sra ->
      false

let swap_cond = function
  | Opcode.Eq -> Opcode.Eq
  | Opcode.Ne -> Opcode.Ne
  | Opcode.Lt -> Opcode.Gt
  | Opcode.Le -> Opcode.Ge
  | Opcode.Gt -> Opcode.Lt
  | Opcode.Ge -> Opcode.Le

let predication_of = function
  | None -> Instr.Unpredicated
  | Some g -> if g.Hb.gpol then Instr.If_true else Instr.If_false

let guard_preds = function None -> [] | Some g -> g.Hb.gpreds

let emit (h : Hb.t) ~alloc ~gen ~use_mov4 =
  let err = ref None in
  let fail fmt = Format.kasprintf (fun s -> if !err = None then err := Some s) fmt in
  let pendings = ref [] in
  let n_pending = ref 0 in
  let add p =
    pendings := p :: !pendings;
    incr n_pending
  in
  let blank =
    {
      p_opcode = Opcode.Null;
      p_pred = Instr.Unpredicated;
      p_imm = 0L;
      p_lsid = -1;
      p_exit = -1;
      p_dst = None;
      p_left = `None;
      p_right = `None;
      p_guards = [];
      p_write = -1;
    }
  in
  (* store index -> lsid, filled while walking the body *)
  let store_lsid : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let lsid_counter = ref 0 in
  let next_lsid () =
    let l = !lsid_counter in
    incr lsid_counter;
    l
  in
  (* write slots *)
  let writes = ref [] and n_writes = ref 0 in
  let write_slot_of : (Temp.t, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (x, prod) ->
      match Regalloc.reg_of alloc x with
      | None -> fail "output temp t%d has no register" x
      | Some reg ->
          let w = !n_writes in
          incr n_writes;
          writes := { Block.wslot = w; wreg = reg } :: !writes;
          Hashtbl.replace write_slot_of prod w)
    h.Hb.houts;
  (* body walk *)
  List.iter
    (fun hi ->
      let g = hi.Hb.guard in
      let pred = predication_of g in
      let gps = guard_preds g in
      let base = { blank with p_pred = pred; p_guards = gps } in
      let operand o = match o with Tac.T t -> `Temp t | Tac.C c -> `Const c in
      match hi.Hb.hop with
      | Hb.Op (Tac.Bin { dst; op; a; b }) -> (
          match (a, b) with
          | a, Tac.C c when imm_ok c ->
              add
                {
                  base with
                  p_opcode = Opcode.Iopi op;
                  p_imm = c;
                  p_dst = Some dst;
                  p_left = operand a;
                }
          | Tac.C c, b when imm_ok c && commutative_ibinop op ->
              add
                {
                  base with
                  p_opcode = Opcode.Iopi op;
                  p_imm = c;
                  p_dst = Some dst;
                  p_left = operand b;
                }
          | a, b ->
              add
                {
                  base with
                  p_opcode = Opcode.Iop op;
                  p_dst = Some dst;
                  p_left = operand a;
                  p_right = operand b;
                })
      | Hb.Op (Tac.Fbin { dst; op; a; b }) ->
          add
            {
              base with
              p_opcode = Opcode.Fop op;
              p_dst = Some dst;
              p_left = operand a;
              p_right = operand b;
            }
      | Hb.Op (Tac.Cmp { dst; cond; fp; a; b }) ->
          if fp then
            add
              {
                base with
                p_opcode = Opcode.Ftst cond;
                p_dst = Some dst;
                p_left = operand a;
                p_right = operand b;
              }
          else (
            match (a, b) with
            | a, Tac.C c when imm_ok c ->
                add
                  {
                    base with
                    p_opcode = Opcode.Tsti cond;
                    p_imm = c;
                    p_dst = Some dst;
                    p_left = operand a;
                  }
            | Tac.C c, b when imm_ok c ->
                add
                  {
                    base with
                    p_opcode = Opcode.Tsti (swap_cond cond);
                    p_imm = c;
                    p_dst = Some dst;
                    p_left = operand b;
                  }
            | a, b ->
                add
                  {
                    base with
                    p_opcode = Opcode.Tst cond;
                    p_dst = Some dst;
                    p_left = operand a;
                    p_right = operand b;
                  })
      | Hb.Op (Tac.Un { dst; op; a }) -> (
          match (op, a) with
          | Opcode.Mov, Tac.C c ->
              if imm_ok c then
                add { base with p_opcode = Opcode.Movi; p_imm = c; p_dst = Some dst }
              else if base.p_pred = Instr.Unpredicated then
                add { base with p_opcode = Opcode.Geni; p_imm = c; p_dst = Some dst }
              else begin
                (* Geni cannot be predicated (Section 3.1 rule 1): generate
                   the wide constant unconditionally into a scratch temp and
                   route it through a predicated move *)
                let scratch = Temp.Gen.fresh gen in
                add
                  {
                    blank with
                    p_opcode = Opcode.Geni;
                    p_imm = c;
                    p_dst = Some scratch;
                  };
                add
                  {
                    base with
                    p_opcode = Opcode.Un Opcode.Mov;
                    p_dst = Some dst;
                    p_left = `Temp scratch;
                  }
              end
          | _, a ->
              add
                {
                  base with
                  p_opcode = Opcode.Un op;
                  p_dst = Some dst;
                  p_left = operand a;
                })
      | Hb.Op (Tac.Load { dst; width; addr; off }) ->
          add
            {
              base with
              p_opcode = Opcode.Ld width;
              p_imm = Int64.of_int off;
              p_lsid = next_lsid ();
              p_dst = Some dst;
              p_left = operand addr;
            }
      | Hb.Op (Tac.Store { width; addr; off; v }) ->
          let lsid = next_lsid () in
          Hashtbl.replace store_lsid (Hashtbl.length store_lsid) lsid;
          add
            {
              base with
              p_opcode = Opcode.St width;
              p_imm = Int64.of_int off;
              p_lsid = lsid;
              p_left = operand addr;
              p_right = operand v;
            }
      | Hb.Op (Tac.Phi _) -> fail "phi reached codegen"
      | Hb.Sand { dst; a; b } ->
          add
            {
              base with
              p_opcode = Opcode.Sand;
              p_dst = Some dst;
              p_left = `Temp a;
              p_right = `Temp b;
            }
      | Hb.Null_write t -> (
          match Hashtbl.find_opt write_slot_of t with
          | None -> fail "null write for unknown output t%d" t
          | Some w -> add { base with p_opcode = Opcode.Null; p_write = w })
      | Hb.Null_store idx -> (
          match Hashtbl.find_opt store_lsid idx with
          | None -> fail "null store for unknown store %d" idx
          | Some _ ->
              (* target resolved after layout: record via p_exit reuse? use
                 a dedicated marker: p_imm holds the store body index *)
              add
                {
                  base with
                  p_opcode = Opcode.Null;
                  p_imm = Int64.of_int idx;
                  p_write = -2;
                }))
    h.Hb.body;
  (* exits *)
  let exit_table = ref [] in
  let exit_idx_of target =
    let name = match target with None -> Block.halt_exit | Some l -> l in
    match
      List.find_index (fun e -> String.equal e name) (List.rev !exit_table)
    with
    | Some i -> i
    | None ->
        exit_table := name :: !exit_table;
        List.length !exit_table - 1
  in
  List.iter
    (fun e ->
      let idx = exit_idx_of e.Hb.etarget in
      add
        {
          blank with
          p_opcode = Opcode.Bro;
          p_pred = predication_of e.Hb.eguard;
          p_guards = guard_preds e.Hb.eguard;
          p_exit = idx;
        })
    h.Hb.hexits;
  match !err with
  | Some e -> Error e
  | None ->
      let pend = Array.of_list (List.rev !pendings) in
      let n = Array.length pend in
      (* materialize constants: one extra producer per constant operand *)
      let extra = ref [] in
      let n_extra = ref 0 in
      let const_producers = ref [] in
      Array.iteri
        (fun i p ->
          let mat c slot =
            let opc = if imm_ok c then Opcode.Movi else Opcode.Geni in
            let id = n + !n_extra in
            incr n_extra;
            extra :=
              Instr.make ~id ~opcode:opc ~imm:c
                ~targets:[ Target.To_instr { id = i; slot } ]
                ()
              :: !extra;
            const_producers := id :: !const_producers
          in
          (match p.p_left with `Const c -> mat c Target.Left | `Temp _ | `None -> ());
          match p.p_right with
          | `Const c -> mat c Target.Right
          | `Temp _ | `None -> ())
        pend;
      (* consumer lists per temp *)
      let consumers : (Temp.t, Target.t list ref) Hashtbl.t = Hashtbl.create 64 in
      let add_consumer t tgt =
        let r =
          match Hashtbl.find_opt consumers t with
          | Some r -> r
          | None ->
              let r = ref [] in
              Hashtbl.replace consumers t r;
              r
        in
        r := tgt :: !r
      in
      Array.iteri
        (fun i p ->
          (match p.p_left with
          | `Temp t -> add_consumer t (Target.To_instr { id = i; slot = Target.Left })
          | `Const _ | `None -> ());
          (match p.p_right with
          | `Temp t -> add_consumer t (Target.To_instr { id = i; slot = Target.Right })
          | `Const _ | `None -> ());
          List.iter
            (fun t -> add_consumer t (Target.To_instr { id = i; slot = Target.Pred }))
            p.p_guards)
        pend;
      (* write-slot consumers *)
      List.iter
        (fun (_, prod) ->
          match Hashtbl.find_opt write_slot_of prod with
          | Some w -> add_consumer prod (Target.To_write w)
          | None -> ())
        h.Hb.houts;
      (* producer sets per temp *)
      let producers : (Temp.t, int list ref) Hashtbl.t = Hashtbl.create 64 in
      Array.iteri
        (fun i p ->
          match p.p_dst with
          | Some d ->
              let r =
                match Hashtbl.find_opt producers d with
                | Some r -> r
                | None ->
                    let r = ref [] in
                    Hashtbl.replace producers d r;
                    r
              in
              r := i :: !r
          | None -> ())
        pend;
      (* null-store targets: Null with p_write = -2 targets the store's
         left slot; find the store pending index for body store idx *)
      let store_pending_idx = Hashtbl.create 8 in
      let store_count = ref 0 in
      Array.iteri
        (fun i p ->
          match p.p_opcode with
          | Opcode.St _ ->
              Hashtbl.replace store_pending_idx !store_count i;
              incr store_count
          | _ -> ())
        pend;
      (* assemble instruction records with target lists, then fan out *)
      let fanout_moves = ref 0 in
      let instrs : Instr.t list ref = ref [] in
      let next_id = ref (n + !n_extra) in
      (* final targets for each pending instr *)
      let final_targets = Array.make (max n 1) [] in
      (* fanout: given a producer with capacity [cap], return the direct
         targets it should carry, appending mov instructions for the
         rest *)
      (* Build a *balanced* software fanout tree of moves covering
         [targets], returning at most [roots] root targets. Every
         producer of the same temp shares one tree: at most one producer
         fires per execution, so one token flows through it (the paper's
         Section 3.6 fanout trees). *)
      let fanout ~roots targets =
        let mk_node opc group =
          let mov_id = !next_id in
          incr next_id;
          incr fanout_moves;
          instrs :=
            Instr.make ~id:mov_id ~opcode:opc ~targets:group () :: !instrs;
          Target.To_instr { id = mov_id; slot = Target.Left }
        in
        let rec chunk cap acc cur cnt = function
          | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
          | x :: tl ->
              if cnt = cap then chunk cap (List.rev cur :: acc) [ x ] 1 tl
              else chunk cap acc (x :: cur) (cnt + 1) tl
        in
        (* plain balanced mov tree: 2-target movs, any target kinds *)
        let rec build_mov targets =
          let k = List.length targets in
          if k <= roots then targets
          else
            build_mov
              (List.map
                 (fun group ->
                   match group with
                   | [ single ] -> single
                   | _ -> mk_node (Opcode.Un Opcode.Mov) group)
                 (chunk 2 [] [] 0 targets))
        in
        (* mov4 multicasts to up to four consumers that share one operand
           slot and cannot feed write slots (Figure 2's packed encoding),
           so compress each same-slot class separately; leftovers that
           still exceed the root budget fall back to ordinary movs, which
           may mix target kinds *)
        let rec build_mov4 targets =
          let k = List.length targets in
          if k <= roots then targets
          else begin
            let is_slot s = function
              | Target.To_instr { slot; _ } -> Target.slot_equal slot s
              | Target.To_write _ -> false
            in
            let l, rest = List.partition (is_slot Target.Left) targets in
            let r, rest = List.partition (is_slot Target.Right) rest in
            let p, writes = List.partition (is_slot Target.Pred) rest in
            let compress cls =
              List.map
                (fun group ->
                  match group with
                  | [ single ] -> single
                  | _ -> mk_node Opcode.Mov4 group)
                (chunk 4 [] [] 0 cls)
            in
            let parents = compress l @ compress r @ compress p @ writes in
            if List.length parents < k then build_mov4 parents
            else build_mov parents
          end
        in
        if use_mov4 then build_mov4 targets else build_mov targets
      in
      (* one shared tree per temp, bounded by the smallest producer
         capacity *)
      let tree_targets : (Temp.t, Target.t list) Hashtbl.t = Hashtbl.create 32 in
      Hashtbl.iter
        (fun d prods ->
          let min_cap =
            List.fold_left
              (fun acc i -> min acc (Opcode.max_targets pend.(i).p_opcode))
              max_int !prods
          in
          let tgts =
            match Hashtbl.find_opt consumers d with
            | Some r -> List.rev !r
            | None -> []
          in
          Hashtbl.replace tree_targets d (fanout ~roots:(max 1 min_cap) tgts))
        producers;
      Array.iteri
        (fun i p ->
          match p.p_dst with
          | Some d ->
              final_targets.(i) <-
                Option.value ~default:[] (Hashtbl.find_opt tree_targets d)
          | None ->
              (* null instructions have explicit single targets *)
              if p.p_write >= 0 then
                final_targets.(i) <- [ Target.To_write p.p_write ]
              else if p.p_write = -2 then begin
                match Hashtbl.find_opt store_pending_idx (Int64.to_int p.p_imm) with
                | Some st ->
                    final_targets.(i) <-
                      [ Target.To_instr { id = st; slot = Target.Left } ]
                | None -> fail "null store target missing"
              end)
        pend;
      (match !err with
      | Some _ -> ()
      | None -> ());
      (* reads for live-in temps; duplicate read slots before moving *)
      let reads = ref [] and n_reads = ref 0 in
      let live_in_temps =
        Hashtbl.fold
          (fun t _ acc ->
            if Hashtbl.mem producers t then acc else Temp.Set.add t acc)
          consumers Temp.Set.empty
      in
      Temp.Set.iter
        (fun t ->
          match Regalloc.reg_of alloc t with
          | None -> fail "live-in temp t%d has no register" t
          | Some reg ->
              let tgts = List.rev !(Hashtbl.find consumers t) in
              (* split across duplicated read slots of two targets each
                 while slots remain; overflow goes through fanout moves *)
              let rec assign tgts =
                match tgts with
                | [] -> ()
                | [ a ] ->
                    reads :=
                      { Block.rslot = !n_reads; reg; rtargets = [ a ] } :: !reads;
                    incr n_reads
                | [ a; b ] ->
                    reads :=
                      { Block.rslot = !n_reads; reg; rtargets = [ a; b ] }
                      :: !reads;
                    incr n_reads
                | a :: b :: tl ->
                    if !n_reads < Block.max_reads - 1 then begin
                      reads :=
                        { Block.rslot = !n_reads; reg; rtargets = [ a; b ] }
                        :: !reads;
                      incr n_reads;
                      assign tl
                    end
                    else begin
                      (* last slot: route everything through fanout moves *)
                      let direct = fanout ~roots:2 tgts in
                      reads :=
                        { Block.rslot = !n_reads; reg; rtargets = direct }
                        :: !reads;
                      incr n_reads
                    end
              in
              assign tgts)
        live_in_temps;
      (* assemble *)
      let body_instrs =
        Array.to_list
          (Array.mapi
             (fun i p ->
               (* the null-store marker borrows p_imm until its target is
                  resolved; no opcode without an immediate field may carry
                  one into the binary encoding *)
               let imm =
                 if Opcode.has_immediate p.p_opcode then p.p_imm else 0L
               in
               Instr.make ~id:i ~opcode:p.p_opcode ~pred:p.p_pred ~imm
                 ~targets:final_targets.(i) ~lsid:p.p_lsid ~exit_idx:p.p_exit
                 ())
             pend)
        @ List.rev !extra @ List.rev !instrs
      in
      (* ids of extras/movs were allocated past n; verify density *)
      let body =
        List.sort (fun (a : Instr.t) b -> compare a.Instr.id b.Instr.id) body_instrs
      in
      (* Target word 0 is reserved ("no target") and collides with the
         encoding of I0's left operand, so no token may be steered there
         (Figure 2). If instruction 0's left operand has a producer, swap
         I0 with an instruction whose left is never targeted — an exit
         instruction always qualifies, having no data operands — and
         remap ids everywhere. *)
      let body =
        let arr = Array.of_list body in
        let to_left id = function
          | Target.To_instr { id = d; slot = Target.Left } -> d = id
          | _ -> false
        in
        let left_targeted id =
          Array.exists
            (fun (i : Instr.t) -> List.exists (to_left id) i.Instr.targets)
            arr
          || List.exists
               (fun r -> List.exists (to_left id) r.Block.rtargets)
               !reads
        in
        if Array.length arr = 0 || not (left_targeted 0) then body
        else begin
          let j = ref (-1) in
          Array.iteri
            (fun i (_ : Instr.t) ->
              if !j < 0 && i > 0 && not (left_targeted i) then j := i)
            arr;
          match !j with
          | -1 ->
              fail "no instruction free of left-operand producers for slot 0";
              body
          | _ ->
              let j = !j in
              let remap_id id = if id = 0 then j else if id = j then 0 else id in
              let remap_target = function
                | Target.To_instr { id; slot } ->
                    Target.To_instr { id = remap_id id; slot }
                | Target.To_write _ as t -> t
              in
              let remap_instr (i : Instr.t) =
                {
                  i with
                  Instr.id = remap_id i.Instr.id;
                  targets = List.map remap_target i.Instr.targets;
                }
              in
              reads :=
                List.map
                  (fun r ->
                    {
                      r with
                      Block.rtargets = List.map remap_target r.Block.rtargets;
                    })
                  !reads;
              let remapped = Array.map remap_instr arr in
              let tmp = remapped.(0) in
              remapped.(0) <- remapped.(j);
              remapped.(j) <- tmp;
              Array.to_list remapped
        end
      in
      let store_lsids =
        List.sort_uniq compare (Hashtbl.fold (fun _ l acc -> l :: acc) store_lsid [])
      in
      let explicit_predicates =
        List.length (List.filter (fun hi -> hi.Hb.guard <> None) h.Hb.body)
      in
      (match !err with
      | Some e -> Error e
      | None ->
          let block =
            {
              Block.name = h.Hb.hname;
              instrs = Array.of_list body;
              reads = Array.of_list (List.rev !reads);
              writes = Array.of_list (List.rev !writes);
              store_lsids;
              exits = Array.of_list (List.rev !exit_table);
            }
          in
          (match Block.validate block with
          | Ok () ->
              Ok { block; fanout_moves = !fanout_moves; explicit_predicates }
          | Error es ->
              Error
                (Printf.sprintf "block %s invalid: %s" h.Hb.hname
                   (String.concat "; " es))))
