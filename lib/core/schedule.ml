module Block = Edge_isa.Block
module Instr = Edge_isa.Instr
module Opcode = Edge_isa.Opcode
module Target = Edge_isa.Target
module Md = Edge_isa.Machine_desc

let place ?(machine = Md.default) (b : Block.t) =
  let num_tiles = Md.num_tiles machine in
  let slots_per_tile = machine.Md.slots_per_tile in
  let hops = Md.hops machine in
  let reg_access_hops = Md.reg_access_hops machine in
  let mem_access_hops = Md.mem_access_hops machine in
  let n = Array.length b.Block.instrs in
  let placement = Array.make n (-1) in
  let load = Array.make num_tiles 0 in
  (* producers of each instruction's operands *)
  let producers = Array.make n [] in
  Array.iteri
    (fun src (i : Instr.t) ->
      List.iter
        (function
          | Target.To_instr { id; _ } ->
              if id >= 0 && id < n then producers.(id) <- src :: producers.(id)
          | Target.To_write _ -> ())
        i.Instr.targets)
    b.Block.instrs;
  (* topological order over the (acyclic) dataflow graph: producers
     before consumers, sources ordered by register/memory affinity *)
  let indeg = Array.make n 0 in
  Array.iteri (fun i _ -> indeg.(i) <- List.length producers.(i)) b.Block.instrs;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let topo = ref [] in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    topo := i :: !topo;
    List.iter
      (function
        | Target.To_instr { id; _ } when id < n ->
            indeg.(id) <- indeg.(id) - 1;
            if indeg.(id) = 0 then Queue.add id queue
        | Target.To_instr _ | Target.To_write _ -> ())
      b.Block.instrs.(i).Instr.targets
  done;
  (* instructions on dependence cycles (impossible in well-formed blocks,
     but be safe) go last in index order *)
  Array.iteri (fun i d -> if d > 0 then topo := i :: !topo) indeg;
  let topo = List.rev !topo in
  (* list placement: estimated completion time per instruction; choose
     the tile minimizing the estimated issue time, modeling operand
     routing hops, register/data-edge distances and tile contention *)
  let est = Array.make n 0 in
  let tile_busy = Array.make num_tiles 0 in
  List.iter
    (fun i ->
      let instr = b.Block.instrs.(i) in
      let is_mem =
        match instr.Instr.opcode with
        | Opcode.Ld _ | Opcode.St _ -> true
        | _ -> false
      in
      let writes_reg =
        List.exists
          (function Target.To_write _ -> true | Target.To_instr _ -> false)
          instr.Instr.targets
      in
      let best = ref (-1) and best_cost = ref max_int in
      for t = 0 to num_tiles - 1 do
        if load.(t) < slots_per_tile then begin
          let ready =
            List.fold_left
              (fun acc p ->
                if placement.(p) >= 0 then
                  max acc (est.(p) + hops placement.(p) t)
                else acc)
              0 producers.(i)
          in
          (* sources receive operands from the register file edge *)
          let ready =
            if producers.(i) = [] then reg_access_hops t else ready
          in
          let ready = if is_mem then ready + (2 * mem_access_hops t) else ready in
          let ready = if writes_reg then ready + reg_access_hops t else ready in
          let start = max ready tile_busy.(t) in
          (* prefer spreading equal-start choices *)
          let cost = (start * 4) + load.(t) in
          if cost < !best_cost then begin
            best_cost := cost;
            best := t
          end
        end
      done;
      let t = if !best >= 0 then !best else 0 in
      placement.(i) <- t;
      load.(t) <- load.(t) + 1;
      let ready =
        List.fold_left
          (fun acc p ->
            if placement.(p) >= 0 then max acc (est.(p) + hops placement.(p) t)
            else acc)
          (if producers.(i) = [] then reg_access_hops t else 0)
          producers.(i)
      in
      let start = max ready tile_busy.(t) in
      tile_busy.(t) <- start + 1;
      est.(i) <- start + Opcode.latency instr.Instr.opcode)
    topo;
  placement
