module Cfg = Edge_ir.Cfg
module Hb = Edge_ir.Hblock
module Temp = Edge_ir.Temp
module Label = Edge_ir.Label
module Liveness = Edge_ir.Liveness

type compiled = {
  program : Edge_isa.Program.t;
  placements : (string * int array) list;
  static_fanout_moves : int;
  static_instrs : int;
  static_blocks : int;
  explicit_predicates : int;
  pass_counters : (string * int) list;
      (* per-pass optimization counters ("pass.*", sorted by name) from
         the final, successful generate attempt; stored as a plain list
         so [compiled] stays safe to memoize and ship across domains *)
}

let ( let* ) = Result.bind

(* Render a checker result as a pipeline error (the first diagnostic,
   with overflow counted).  [check = false] short-circuits: the checker
   costs compile time and only runs when requested. *)
let checked ~check result_thunk =
  if not check then Ok ()
  else
    match Edge_check.Check.to_error (result_thunk ()) with
    | None -> Ok ()
    | Some e -> Error e

let check_hblocks ~check ~pass hblocks =
  checked ~check (fun () ->
      Edge_check.Check.hblocks ~pass:(Pass_id.name pass) hblocks)

(* The psi round-trip invariant: Psi-SSA construction followed by
   destruction must be the structural identity on every hyperblock (so
   it trivially preserves checker verdicts).  Runs with [check] on,
   after the optimization pipeline. *)
let check_psi_roundtrip ~check ~gen hblocks =
  if not check then Ok ()
  else
    List.fold_left
      (fun acc (h : Hb.t) ->
        let* () = acc in
        if Edge_ir.Psi_ssa.roundtrip ~gen h then Ok ()
        else
          Error
            (Edge_check.Diag.to_string
               (Edge_check.Diag.make ~pass:"psi_ssa" ~block:h.Hb.hname
                  ~where:"body" Edge_check.Diag.Structure
                  "psi construct/destruct round-trip changed the block")))
      (Ok ()) hblocks

let rec convert_regions ?m cfg liveness ~retq regions =
  match regions with
  | [] -> Ok []
  | r :: rest ->
      let* h = If_convert.convert ?m cfg liveness r ~retq in
      let* hs = convert_regions ?m cfg liveness ~retq rest in
      Ok (h :: hs)

(* Generate code for all hyperblocks; when one exceeds machine limits,
   split its region into basic blocks and redo the whole pipeline with
   the refined region list.  With [check] on, the static verifier runs
   after every optimization pass and any diagnostic aborts compilation,
   naming the pass that broke the invariant. *)
let apply_opts ?m ?(check = false) ?lint (config : Config.t) cfg liveness
    ~retq hblocks =
  let hook pass = check_hblocks ~check ~pass hblocks in
  if config.Config.mode <> Config.Hyper then Ok hblocks
  else
    let* () =
      if config.Config.opt_path_sensitive then begin
        Opt_path.run ?m hblocks cfg liveness ~retq;
        hook Pass_id.Opt_path
      end
      else Ok ()
    in
    let* () =
      if config.Config.opt_fanout then begin
        List.iter (Opt_fanout.run ?m) hblocks;
        hook Pass_id.Opt_fanout
      end
      else Ok ()
    in
    let* () =
      if config.Config.opt_merge then begin
        List.iter (Opt_merge.run ?m) hblocks;
        hook Pass_id.Opt_merge
      end
      else Ok ()
    in
    let* () =
      if config.Config.use_sand then begin
        List.iter
          (fun h -> ignore (Opt_sand.run ?m h ~gen:cfg.Cfg.gen))
          hblocks;
        hook Pass_id.Opt_sand
      end
      else Ok ()
    in
    let* () =
      List.iter Opt_hclean.run hblocks;
      hook Pass_id.Opt_hclean
    in
    (* lint mode reports what opt_ineff would do and leaves the code
       alone, so the diagnostics describe the blocks the caller sees *)
    match lint with
    | Some report ->
        List.iter
          (fun (h : Hb.t) -> List.iter report (Opt_ineff.findings h))
          hblocks;
        Ok hblocks
    | None ->
        let* () =
          if config.Config.opt_ineff then begin
            List.iter (Opt_ineff.run ?m) hblocks;
            hook Pass_id.Opt_ineff
          end
          else Ok ()
        in
        let* () =
          (* mop up the test/pred chains the deleted sites and dropped
             guards were the last consumers of *)
          if config.Config.opt_ineff then begin
            List.iter Opt_hclean.run hblocks;
            hook Pass_id.Opt_hclean
          end
          else Ok ()
        in
        Ok hblocks

(* Each attempt gets a fresh registry: a retry after an emit failure
   redoes the whole pipeline, and only the successful attempt's counts
   may survive. *)
let rec generate ~check ?lint cfg (config : Config.t) liveness ~retq ~params
    regions =
  let m = Edge_obs.Metrics.create () in
  let* hblocks = convert_regions ~m cfg liveness ~retq regions in
  let* () = check_hblocks ~check ~pass:Pass_id.If_convert hblocks in
  let* hblocks =
    apply_opts ~m ~check ?lint config cfg liveness ~retq hblocks
  in
  let* () = check_psi_roundtrip ~check ~gen:cfg.Cfg.gen hblocks in
  let* alloc =
    Regalloc.allocate hblocks ~entry:cfg.Cfg.entry ~params ~retq
  in
  let* () =
    checked ~check (fun () ->
        List.fold_left
          (fun acc (h : Hb.t) ->
            Edge_check.Check.merge acc
              (Edge_check.Check.alloc ~pass:(Pass_id.name Pass_id.Regalloc)
                 ~block:h.Hb.hname
                 ~reg_of:(Regalloc.reg_of alloc)
                 ~live_in:(Regalloc.live_in alloc h.Hb.hname)
                 ~live_out:(Regalloc.live_out alloc h.Hb.hname)))
          Edge_check.Check.empty hblocks)
  in
  let rec emit_all acc = function
    | [] -> Ok (List.rev acc)
    | (h : Hb.t) :: tl -> (
        match Codegen.emit h ~alloc ~gen:cfg.Cfg.gen ~use_mov4:config.Config.use_mov4 with
        | Ok e -> emit_all ((h, e) :: acc) tl
        | Error msg -> Error (h.Hb.hname, msg))
  in
  match emit_all [] hblocks with
  | Ok emitted ->
      let* () =
        checked ~check (fun () ->
            List.fold_left
              (fun acc (_, e) ->
                Edge_check.Check.merge acc
                  (Edge_check.Check.block
                     ~pass:(Pass_id.name Pass_id.Codegen)
                     e.Codegen.block))
              Edge_check.Check.empty emitted)
      in
      let counters = Edge_obs.Metrics.counters m in
      (* every counter key must belong to a structured pass id, so the
         "pass.*" namespace and check[pass=...] attribution stay in
         lock-step *)
      assert (List.for_all (fun (k, _) -> Pass_id.of_counter k <> None) counters);
      Ok (emitted, counters)
  | Error (bad, msg) -> (
      (* split the offending region into singletons and retry *)
      let offending =
        List.find_opt (fun r -> Label.equal r.If_convert.head bad) regions
      in
      match offending with
      | Some r when Label.Set.cardinal r.If_convert.blocks > 1 ->
          let refined =
            List.concat_map
              (fun r' ->
                if Label.equal r'.If_convert.head bad then Region.split r' cfg
                else [ r' ])
              regions
          in
          generate ~check ?lint cfg config liveness ~retq ~params refined
      | _ -> Error msg)

(* Size regions against the *naive* (baseline) predication: if the fully
   predicated form of a region fits the machine limits, every optimized
   form does too, so all configurations compile the same hyperblocks and
   the Figure 7 comparison is apples to apples. *)
let rec fit_regions cfg (config : Config.t) liveness ~retq ~params regions =
  (* aggressive mode sizes against the config's own (merged) code: filling
     blocks beyond what naive predication could hold is exactly what
     merging buys (Section 5.3) *)
  let sizing_config =
    if config.Config.aggressive_regions then config
    else { Config.hyper_baseline with Config.mode = Config.Hyper }
  in
  let* hblocks = convert_regions cfg liveness ~retq regions in
  (* sizing compiles are throwaway; never check them *)
  let* hblocks = apply_opts ~check:false sizing_config cfg liveness ~retq hblocks in
  let* alloc = Regalloc.allocate hblocks ~entry:cfg.Cfg.entry ~params ~retq in
  let rec first_failure = function
    | [] -> None
    | (h : Hb.t) :: tl -> (
        match
          Codegen.emit h ~alloc ~gen:cfg.Cfg.gen
            ~use_mov4:sizing_config.Config.use_mov4
        with
        | Ok _ -> first_failure tl
        | Error _ -> Some h.Hb.hname)
    in
  match first_failure hblocks with
  | None -> Ok regions
  | Some bad ->
      let any_split = ref false in
      let refined =
        List.concat_map
          (fun r ->
            if
              Label.equal r.If_convert.head bad
              && Label.Set.cardinal r.If_convert.blocks > 1
            then begin
              any_split := true;
              (* re-partition under half the region's raw size; repeated
                 failures keep halving until blocks fit (or become
                 singletons) *)
              let budget =
                max 3 (Region.estimate cfg r.If_convert.blocks / 2)
              in
              Region.select_within cfg r ~budget
            end
            else [ r ])
          regions
      in
      if !any_split then fit_regions cfg config liveness ~retq ~params refined
      else
        (* a singleton region that still does not fit is a real error;
           let the config's own pipeline report it *)
        Ok regions

let compile_cfg ?check ?lint cfg (config : Config.t) =
  let check =
    match check with Some c -> c | None -> Edge_check.Check.enabled ()
  in
  let params = cfg.Cfg.params in
  Edge_ir.Ssa.construct cfg;
  Opt_classic.run cfg;
  Edge_ir.Ssa.destruct cfg;
  Cfg.prune_unreachable cfg;
  let* () =
    checked ~check (fun () ->
        Edge_check.Check.cfg ~pass:(Pass_id.name Pass_id.Opt_classic) cfg)
  in
  if config.Config.mode = Config.Hyper then begin
    let target =
      if config.Config.aggressive_regions then
        config.Config.max_block_instrs * 9 / 10
      else config.Config.max_block_instrs / 2
    in
    Unroll.run cfg ~max_unroll:config.Config.max_unroll ~target_instrs:target
  end;
  let retq = Temp.Gen.fresh cfg.Cfg.gen in
  let liveness = Liveness.compute cfg in
  let* regions =
    match config.Config.mode with
    | Config.Bb -> Ok (Region.singletons cfg)
    | Config.Hyper ->
        let frac = if config.Config.aggressive_regions then 70 else 45 in
        let initial =
          Region.select cfg
            ~budget:(config.Config.max_block_instrs * frac / 100)
        in
        fit_regions cfg config liveness ~retq ~params initial
  in
  let* emitted, pass_counters =
    generate ~check ?lint cfg config liveness ~retq ~params regions
  in
  let blocks = List.map (fun (_, e) -> e.Codegen.block) emitted in
  let entry = cfg.Cfg.entry in
  let* program = Edge_isa.Program.make ~entry blocks in
  let* () =
    match Edge_isa.Program.validate program with
    | Ok () -> Ok ()
    | Error es -> Error (String.concat "; " es)
  in
  let placements =
    List.map
      (fun (b : Edge_isa.Block.t) -> (b.Edge_isa.Block.name, Schedule.place b))
      blocks
  in
  let* () =
    checked ~check (fun () ->
        List.fold_left2
          (fun acc (b : Edge_isa.Block.t) (_, p) ->
            Edge_check.Check.merge acc
              (Edge_check.Check.placement ~pass:(Pass_id.name Pass_id.Schedule)
                 b p))
          Edge_check.Check.empty blocks placements)
  in
  Ok
    {
      program;
      placements;
      static_fanout_moves =
        List.fold_left (fun a (_, e) -> a + e.Codegen.fanout_moves) 0 emitted;
      static_instrs =
        List.fold_left
          (fun a (b : Edge_isa.Block.t) ->
            a + Array.length b.Edge_isa.Block.instrs)
          0 blocks;
      static_blocks = List.length blocks;
      explicit_predicates =
        List.fold_left
          (fun a (_, e) -> a + e.Codegen.explicit_predicates)
          0 emitted;
      pass_counters;
    }
