type mode = Bb | Hyper

type t = {
  mode : mode;
  opt_fanout : bool;
  opt_path_sensitive : bool;
  opt_merge : bool;
  max_unroll : int;
  use_mov4 : bool;
  max_block_instrs : int;
  aggressive_regions : bool;
  use_sand : bool;
  opt_ineff : bool;
}

let base =
  {
    mode = Hyper;
    opt_fanout = false;
    opt_path_sensitive = false;
    opt_merge = false;
    max_unroll = 8;
    use_mov4 = false;
    max_block_instrs = 128;
    aggressive_regions = false;
    use_sand = false;
    opt_ineff = false;
  }

let bb = { base with mode = Bb }
let hyper_baseline = base
let intra = { base with opt_fanout = true }
let inter = { base with opt_path_sensitive = true }
(* "Both" is where this reproduction goes beyond the paper: on top of
   intra + inter it runs the Psi-SSA ineffectuality pass (delete defs
   that provably feed no output, store, or branch; drop guards proven
   to be ineffectual deliveries), so every derived config inherits it. *)
let both =
  { base with opt_fanout = true; opt_path_sensitive = true; opt_ineff = true }
let merge = { both with opt_merge = true }

let sand = { both with use_sand = true }

let hand_optimized =
  (* the Section 5.3 case study: merging plus maximal unrolling, standing
     in for the paper's hand-applied transformations *)
  { merge with max_unroll = 16; aggressive_regions = true }

let name t =
  match t.mode with
  | Bb -> "BB"
  | Hyper -> (
      match (t.opt_fanout, t.opt_path_sensitive, t.opt_merge) with
      | false, false, false -> "Hyper"
      | true, false, false -> "Intra"
      | false, true, false -> "Inter"
      | true, true, false -> "Both"
      | true, true, true -> "Merge"
      | _ -> "Custom")

let all_paper_configs =
  [
    ("BB", bb);
    ("Hyper", hyper_baseline);
    ("Intra", intra);
    ("Inter", inter);
    ("Both", both);
  ]
