(** Structured pass identity: the [check[pass=...]] attribution string
    and the ["pass.<prefix>.*"] counter namespace of each compiler pass
    come from one variant, so diagnostics and counters cannot drift
    apart.  {!Driver} asserts every shipped counter key parses back
    through {!of_counter}. *)

type t =
  | If_convert
  | Opt_classic
  | Opt_path
  | Opt_fanout
  | Opt_merge
  | Opt_sand
  | Opt_hclean
  | Opt_ineff
  | Regalloc
  | Codegen
  | Schedule

val all : t list

val name : t -> string
(** The [check[pass=...]] attribution string. *)

val counter : t -> string -> string
(** [counter t metric] is ["pass.<prefix>.<metric>"] in the pass's
    counter namespace. *)

val of_name : string -> t option
val of_counter : string -> t option
(** Recover the owning pass from a counter key. *)
