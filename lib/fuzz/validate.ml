(* Static validation of compiled artifacts against the paper's ISA
   invariants, beyond the structural checks in [Edge_isa.Block.validate]:

   - structural well-formedness (delegated to Block/Program.validate):
     instruction/read/write/LSID caps, 2-bit predicate-field legality,
     target arity and range, every operand/output has a producer;
   - binary encodability: every block body must survive an
     encode/decode round trip bit-exactly (Figure 2 layout), which also
     enforces the reserved-target rule (no consumer at I0's left
     operand, whose encoding collides with "no target") and the 9-bit
     immediate limit;
   - predicate-path completeness: enumerating the outcomes of the
     block's predicate sources, every path must produce a token
     (possibly null) for every write slot, resolve every declared store
     LSID, and fire exactly one branch — the block-output consistency
     the hardware's completion-by-output-counting relies on
     (Sections 3-4) — and no path may deliver two tokens to one operand
     or two matching predicates to one consumer (predicate-OR
     well-formedness, rule 3 of Section 3.5).

   The variable abstraction (which sources are enumerated, which share a
   variable) lives in [Edge_ir.Gate], shared with the polynomial lattice
   checker in lib/check so the two analyses quantify over the same
   space.  Blocks whose variable count exceeds [max_vars] are skipped —
   no longer silently: [path_errors]/[block]/[program] report how many
   blocks the enumerator declined. *)

module B = Edge_isa.Block
module I = Edge_isa.Instr
module O = Edge_isa.Opcode
module T = Edge_isa.Target
module E = Edge_isa.Encode
module Gate = Edge_ir.Gate

let default_max_vars = 11

(* ---------- encode/decode round trip ---------- *)

let roundtrip_errors (b : B.t) : string list =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  (* the reserved-target rule, checked explicitly for a clear message *)
  let check_targets what targets =
    List.iter
      (function
        | T.To_instr { id = 0; slot = T.Left } ->
            err "%s targets I0's left operand (encodes as no-target)" what
        | _ -> ())
      targets
  in
  Array.iter
    (fun (i : I.t) -> check_targets (Printf.sprintf "I%d" i.I.id) i.I.targets)
    b.B.instrs;
  (match E.encode_block_body b.B.instrs with
  | Error e -> err "encode: %s" e
  | Ok words -> (
      match E.decode_block_body words with
      | Error e -> err "decode: %s" e
      | Ok instrs' ->
          if Array.length instrs' <> Array.length b.B.instrs then
            err "round trip changed instruction count: %d -> %d"
              (Array.length b.B.instrs) (Array.length instrs')
          else
            Array.iteri
              (fun idx (orig : I.t) ->
                let dec = instrs'.(idx) in
                if not (I.equal orig dec) then
                  err "I%d does not round-trip: %a <> %a" idx I.pp orig I.pp
                    dec)
              b.B.instrs));
  List.rev !errs

(* ---------- predicate-path enumeration ---------- *)

(* Abstract token values: predicates produced by tests are enumerated
   booleans; moves and sand propagate them; constants have a known
   parity; everything else is unknown (and receives an enumeration
   variable when its value feeds predicate matching). *)
type aval = VTrue | VFalse | VUnknown

type atok = { v : aval; null : bool }

exception Path_error of string

type path_state = {
  left : atok option array;
  right : atok option array;
  pred_matched : bool array;
  fired : bool array;
  writes : int array;  (* tokens received per write slot *)
  mutable stores : (int * [ `Unresolved | `Resolved ]) list;
  mutable branches : int;
  mutable pending_loads : int list;
  queue : (T.t * atok) Queue.t;
}

let pp_assignment names assign =
  String.concat " "
    (List.map2
       (fun name value -> Printf.sprintf "%s=%d" name (if value then 1 else 0))
       names assign)

(* run one path: tests and other variable sources take their assigned
   outcome; firing and delivery mirror the functional executor, minus
   data values *)
let run_path (b : B.t) ~instr_value st =
  let n = Array.length b.B.instrs in
  let resolve_store lsid =
    match List.assoc_opt lsid st.stores with
    | Some `Resolved -> raise (Path_error (Printf.sprintf "store lsid %d resolved twice" lsid))
    | Some `Unresolved ->
        st.stores <-
          List.map
            (fun (l, r) -> if l = lsid then (l, `Resolved) else (l, r))
            st.stores
    | None ->
        raise (Path_error (Printf.sprintf "store lsid %d not declared" lsid))
  in
  let lower_lsids_resolved lsid =
    List.for_all (fun (l, r) -> l >= lsid || r = `Resolved) st.stores
  in
  let ready id =
    let i = b.B.instrs.(id) in
    if st.fired.(id) then false
    else
      let arity = O.num_operands i.I.opcode in
      let data_ok =
        match i.I.opcode with
        | O.Sand -> (
            match st.left.(id) with
            | Some l -> l.v = VFalse || st.right.(id) <> None
            | None -> false)
        | _ ->
            (arity < 1 || st.left.(id) <> None)
            && (arity < 2 || st.right.(id) <> None)
      in
      let pred_ok = (not (I.is_predicated i)) || st.pred_matched.(id) in
      data_ok && pred_ok
  in
  let rec deliver (target, tok) =
    match target with
    | T.To_write w ->
        st.writes.(w) <- st.writes.(w) + 1;
        if st.writes.(w) > 1 then
          raise (Path_error (Printf.sprintf "write slot %d received two tokens" w))
    | T.To_instr { id; slot } -> (
        let i = b.B.instrs.(id) in
        match slot with
        | T.Pred ->
            let matches =
              match (i.I.pred, tok.v) with
              | I.Unpredicated, _ ->
                  raise
                    (Path_error
                       (Printf.sprintf "I%d: predicate delivered to unpredicated instruction" id))
              | I.If_true, VTrue | I.If_false, VFalse -> true
              | I.If_true, VFalse | I.If_false, VTrue -> false
              | _, VUnknown ->
                  raise
                    (Path_error
                       (Printf.sprintf "I%d: predicate arrives with underivable value" id))
            in
            if matches then begin
              if st.pred_matched.(id) then
                raise (Path_error (Printf.sprintf "I%d: two matching predicates" id));
              st.pred_matched.(id) <- true;
              try_fire id
            end
        | T.Left | T.Right -> (
            match i.I.opcode with
            | O.St _ when tok.null ->
                if st.fired.(id) then
                  raise (Path_error (Printf.sprintf "I%d: null for fired store" id));
                st.fired.(id) <- true;
                resolve_store i.I.lsid;
                retry_loads ()
            | _ ->
                let arr =
                  match slot with
                  | T.Left -> st.left
                  | T.Right -> st.right
                  | T.Pred -> assert false
                in
                (match arr.(id) with
                | Some _ ->
                    raise
                      (Path_error
                         (Format.asprintf "I%d: operand %a delivered twice" id
                            T.pp_slot slot))
                | None -> arr.(id) <- Some tok);
                try_fire id))
  and try_fire id = if ready id then fire id
  and fire id =
    let i = b.B.instrs.(id) in
    match i.I.opcode with
    | O.Ld _ ->
        if not (lower_lsids_resolved i.I.lsid) then begin
          if not (List.mem id st.pending_loads) then
            st.pending_loads <- id :: st.pending_loads
        end
        else begin
          st.fired.(id) <- true;
          send_all i { v = instr_value id; null = false }
        end
    | O.St _ ->
        st.fired.(id) <- true;
        let l = Option.get st.left.(id) and r = Option.get st.right.(id) in
        ignore l;
        ignore r;
        resolve_store i.I.lsid;
        retry_loads ()
    | O.Bro | O.Halt ->
        st.fired.(id) <- true;
        st.branches <- st.branches + 1;
        if st.branches > 1 then raise (Path_error "two branches fired")
    | O.Null ->
        st.fired.(id) <- true;
        send_all i { v = VFalse; null = true }
    | O.Un O.Mov | O.Mov4 ->
        st.fired.(id) <- true;
        let l = Option.get st.left.(id) in
        send_all i l
    | O.Un O.Not ->
        (* bitwise not flips the low bit, so predicate parity inverts *)
        st.fired.(id) <- true;
        let l = Option.get st.left.(id) in
        let v =
          match l.v with
          | VTrue -> VFalse
          | VFalse -> VTrue
          | VUnknown -> VUnknown
        in
        send_all i { l with v }
    | O.Un O.Neg ->
        (* two's-complement negation preserves the low bit *)
        st.fired.(id) <- true;
        send_all i (Option.get st.left.(id))
    | O.Sand ->
        st.fired.(id) <- true;
        let l = Option.get st.left.(id) in
        let v =
          match l.v with
          | VFalse -> VFalse
          | VTrue -> (Option.get st.right.(id)).v
          | VUnknown -> VUnknown
        in
        send_all i { v; null = l.null }
    | _ ->
        st.fired.(id) <- true;
        send_all i { v = instr_value id; null = false }
  and send_all (i : I.t) tok =
    List.iter (fun tgt -> Queue.add (tgt, tok) st.queue) i.I.targets;
    drain ()
  and retry_loads () =
    let loads = st.pending_loads in
    st.pending_loads <- [];
    List.iter (fun id -> if not st.fired.(id) then fire id) loads
  and drain () =
    while not (Queue.is_empty st.queue) do
      deliver (Queue.pop st.queue)
    done
  in
  (* seed register reads *)
  Array.iteri
    (fun r (rd : B.read) ->
      let tok = { v = instr_value (n + r); null = false } in
      List.iter (fun tgt -> Queue.add (tgt, tok) st.queue) rd.B.rtargets)
    b.B.reads;
  (* seed 0-operand unpredicated instructions *)
  Array.iteri
    (fun id (i : I.t) ->
      if O.num_operands i.I.opcode = 0 && not (I.is_predicated i) then
        try_fire id)
    b.B.instrs;
  drain ();
  (* completeness: every output produced, exactly one exit taken *)
  let missing = Buffer.create 32 in
  Array.iteri
    (fun w c ->
      if c = 0 then Buffer.add_string missing (Printf.sprintf " W%d" w))
    st.writes;
  List.iter
    (fun (l, r) ->
      if r = `Unresolved then Buffer.add_string missing (Printf.sprintf " S%d" l))
    st.stores;
  if st.branches = 0 then Buffer.add_string missing " branch";
  if Buffer.length missing > 0 then
    raise
      (Path_error
         (Printf.sprintf "block output starves; missing:%s" (Buffer.contents missing)))

(* number of enumeration variables the block would need — the quantity
   compared against [max_vars] *)
let enum_vars (b : B.t) : int =
  let rel = Gate.boolean_relevant b in
  let _, _, k = Gate.variables b rel in
  k

(* Returns the path errors plus whether enumeration was skipped because
   the block needs more than [max_vars] variables (2^k paths). *)
let path_errors ?(max_vars = default_max_vars) (b : B.t) :
    string list * bool =
  let n = Array.length b.B.instrs in
  let rel = Gate.boolean_relevant b in
  let names, var_of, k = Gate.variables b rel in
  if k > max_vars then ([], true)
  else begin
    let const_value (i : I.t) =
      match Gate.const_parity i with
      | Some true -> Some VTrue
      | Some false -> Some VFalse
      | None -> None
    in
    let err = ref None in
    let case = ref 0 in
    while !err = None && !case < 1 lsl k do
      let bits = !case in
      let assign = List.init k (fun i -> bits land (1 lsl i) <> 0) in
      let instr_value idx =
        match Hashtbl.find_opt var_of idx with
        | Some (pos, negated) ->
            if bits land (1 lsl pos) <> 0 <> negated then VTrue else VFalse
        | None -> (
            if idx < n then
              match const_value b.B.instrs.(idx) with
              | Some v -> v
              | None -> VUnknown
            else VUnknown)
      in
      let st =
        {
          left = Array.make n None;
          right = Array.make n None;
          pred_matched = Array.make n false;
          fired = Array.make n false;
          writes = Array.make (Array.length b.B.writes) 0;
          stores = List.map (fun l -> (l, `Unresolved)) b.B.store_lsids;
          branches = 0;
          pending_loads = [];
          queue = Queue.create ();
        }
      in
      (try run_path b ~instr_value st
       with Path_error m ->
         err :=
           Some
             (Printf.sprintf "path [%s]: %s" (pp_assignment names assign) m));
      incr case
    done;
    ((match !err with None -> [] | Some e -> [ e ]), false)
  end

(* ---------- entry points ---------- *)

(* [Ok skipped]: the block is clean as far as the enumerator looked;
   [skipped] is true when path enumeration was declined (too many
   variables) and only the structural/round-trip checks ran. *)
let block ?max_vars (b : B.t) : (bool, string list) result =
  let structural =
    match B.validate b with Ok () -> [] | Error es -> es
  in
  let path, skipped = path_errors ?max_vars b in
  match structural @ roundtrip_errors b @ path with
  | [] -> Ok skipped
  | es -> Error es

(* [Ok n]: the program is clean; [n] blocks were too wide for path
   enumeration and got only structural checks. *)
let program ?max_vars (p : Edge_isa.Program.t) : (int, string list) result =
  let skipped = ref 0 in
  let block_errs =
    List.concat_map
      (fun (name, blk) ->
        match block ?max_vars blk with
        | Ok s ->
            if s then incr skipped;
            []
        | Error es -> List.map (fun e -> name ^ ": " ^ e) es)
      p.Edge_isa.Program.blocks
  in
  (* the inter-block exit graph *)
  let exit_errs =
    List.concat_map
      (fun (name, (blk : B.t)) ->
        Array.to_list blk.B.exits
        |> List.filter_map (fun e ->
               if
                 String.equal e B.halt_exit
                 || Edge_isa.Program.find p e <> None
               then None
               else Some (Printf.sprintf "%s: exit to unknown block %s" name e)))
      p.Edge_isa.Program.blocks
  in
  match block_errs @ exit_errs with [] -> Ok !skipped | es -> Error es
