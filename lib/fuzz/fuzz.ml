(* Fuzzing campaigns: deterministic fan-out of (seed, size) tasks over
   the domain pool.

   Each task is pure — it derives everything from its seed — and
   [Edge_parallel.Pool.map] is order-preserving, so a campaign's report
   is a function of (seed, n, sizes, oracle switches) alone: the same
   report for any [-j], which is what makes "fuzz found seed S" a
   reproducible statement rather than a race observation. *)

module A = Edge_lang.Ast

type failure = {
  seed : int;
  size : int;
  config : string;
  kind : Oracle.kind;
  message : string;
  source : string;  (** pretty-printed kernel source of the reproducer *)
}

type report = {
  tested : int;  (** programs whose oracle verdict counted *)
  skipped : int;  (** reference interpreter ran out of fuel *)
  enum_skipped : int;
      (** compiled blocks the enumerator skipped (more than [max_vars]
          predicate variables); those blocks still got the structural
          and lattice checks, just not exhaustive path enumeration *)
  failures : failure list;  (** in seed order *)
}

let default_min_size = 6
let default_max_size = 45

let check_one ?cycle ?machines ?validate ?check ?max_vars ?cache ~seed ~size
    () : (int, failure) result option =
  let ast = Gen.generate ~seed ~size in
  match Oracle.check ?cycle ?machines ?validate ?check ?max_vars ?cache ast with
  | exception Oracle.Skip -> None
  | Ok enum_skipped -> Some (Ok enum_skipped)
  | Error f ->
      Some
        (Error
           {
             seed;
             size;
             config = f.Oracle.config;
             kind = f.Oracle.kind;
             message = f.Oracle.message;
             source = Pretty.kernel_to_string ast;
           })

let run ?jobs ?cycle ?machines ?validate ?check ?max_vars ?cache
    ?(min_size = default_min_size) ?(max_size = default_max_size) ~seed ~n ()
    : report =
  let tasks = List.init n (fun i -> i) in
  let results =
    Edge_parallel.Pool.run ?jobs
      (fun i ->
        let size = Gen.size_for ~min_size ~max_size i in
        check_one ?cycle ?machines ?validate ?check ?max_vars ?cache
          ~seed:(seed + i) ~size ())
      tasks
  in
  List.fold_left
    (fun acc r ->
      match r with
      | None -> { acc with skipped = acc.skipped + 1 }
      | Some (Ok enum_skipped) ->
          {
            acc with
            tested = acc.tested + 1;
            enum_skipped = acc.enum_skipped + enum_skipped;
          }
      | Some (Error f) ->
          { acc with tested = acc.tested + 1; failures = f :: acc.failures })
    { tested = 0; skipped = 0; enum_skipped = 0; failures = [] }
    results
  |> fun r -> { r with failures = List.rev r.failures }

let pp_failure ppf (f : failure) =
  Format.fprintf ppf "FAIL seed=%d size=%d %s [%s] %s" f.seed f.size f.config
    (Oracle.kind_name f.kind) f.message

let pp_report ppf (r : report) =
  List.iter (fun f -> Format.fprintf ppf "%a@." pp_failure f) r.failures;
  Format.fprintf ppf
    "%d tested, %d skipped, %d failures (%d blocks beyond enumerator width)@."
    r.tested r.skipped
    (List.length r.failures)
    r.enum_skipped

(* ---------- minimization ---------- *)

(* Shrink a campaign failure to a minimal reproducer preserving its
   (config, kind) — and, for checker failures, the diagnostic's
   (pass, invariant) key, so the minimized kernel still trips the same
   invariant in the same pass as the original. *)
let minimize_failure ?cycle ?machines ?validate ?check ?max_vars
    (f : failure) : A.kernel =
  let ast = Gen.generate ~seed:f.seed ~size:f.size in
  let check_key =
    match f.kind with
    | Oracle.Checker -> Edge_check.Diag.parse_key f.message
    | _ -> None
  in
  Shrink.minimize
    ~keep:
      (Oracle.still_fails ?cycle ?machines ?validate ?check ?check_key
         ?max_vars ~config:f.config ~kind:f.kind)
    ast

(* ---------- corpus replay ---------- *)

let replay_source ?cycle ?machines ?validate ?check ?max_vars ~name src :
    (unit, string) result =
  match Edge_lang.Parser.parse src with
  | Error e -> Error (Printf.sprintf "%s: parse: %s" name e)
  | Ok ast -> (
      match
        try `R (Oracle.check ?cycle ?machines ?validate ?check ?max_vars ast)
        with Oracle.Skip -> `Skip
      with
      | `Skip -> Ok ()
      | `R (Ok _) -> Ok ()
      | `R (Error f) ->
          Error
            (Printf.sprintf "%s: %s [%s] %s" name f.Oracle.config
               (Oracle.kind_name f.Oracle.kind)
               f.Oracle.message))

(* ---------- whole-workload artifact validation ---------- *)

(* Compile every registry workload under every configuration and run the
   static validator over each artifact — the "validator passes on all
   compiled artifacts of the Figure 7 sweep" acceptance gate, extended
   to the auxiliary configs. Compilation goes through the memoized
   harness cache, so a subsequent experiment sweep pays nothing extra. *)
let validate_workloads ?jobs ?max_vars ?(workloads = Edge_workloads.Registry.all)
    () : (string * string) list =
  let tasks =
    List.concat_map
      (fun (w : Edge_workloads.Workload.t) ->
        List.map (fun (cname, config) -> (w, cname, config)) Oracle.configs)
      workloads
  in
  Edge_parallel.Pool.run ?jobs
    (fun ((w : Edge_workloads.Workload.t), cname, config) ->
      let label = Printf.sprintf "%s/%s" w.Edge_workloads.Workload.name cname in
      match Edge_harness.Experiment.compile_cached w config with
      | Error e -> [ (label, "compile: " ^ e) ]
      | Ok compiled -> (
          match Validate.program ?max_vars compiled.Dfp.Driver.program with
          | Ok _skipped -> []
          | Error es -> List.map (fun e -> (label, e)) es))
    tasks
  |> List.concat

(* ---------- checker smoke ---------- *)

(* Run the per-pass lattice checker (no execution, no enumeration) over
   a set of named kernel sources plus [n] generated kernels, under every
   configuration. Returns one entry per diagnostic-bearing compile; a
   clean sweep is the `make check-smoke` gate. *)
let smoke_tasks ?(n = 50) ?(seed = 2006) ~sources () =
  let gen_tasks =
    List.init n (fun i ->
        let size =
          Gen.size_for ~min_size:default_min_size ~max_size:default_max_size i
        in
        let s = seed + i in
        ( Printf.sprintf "gen-seed-%d" s,
          Pretty.kernel_to_string (Gen.generate ~seed:s ~size) ))
  in
  List.concat_map
    (fun (name, src) ->
      List.map
        (fun (cname, config) -> (name, src, cname, config))
        Oracle.configs)
    (sources @ gen_tasks)

let check_smoke ?jobs ?n ?seed ~sources () : (string * string) list =
  Edge_parallel.Pool.run ?jobs
    (fun (name, src, cname, config) ->
      let label = Printf.sprintf "%s/%s" name cname in
      match Edge_lang.Parser.parse src with
      | Error e -> [ (label, "parse: " ^ e) ]
      | Ok ast -> (
          match Edge_lang.Lower.lower ast with
          | Error e -> [ (label, "lower: " ^ e) ]
          | Ok cfg -> (
              match Dfp.Driver.compile_cfg ~check:true cfg config with
              | Ok _ -> []
              | Error e -> [ (label, e) ])))
    (smoke_tasks ?n ?seed ~sources ())
  |> List.concat

(* ---------- ineffectuality-lint smoke ---------- *)

(* Compile the same kernel set in lint mode: every ineffectuality
   finding is reported (not applied), and — since the enumerator
   cross-validation hook is installed process-wide — every reported
   plan has already been re-proved by exhaustive path enumeration.  A
   disproved verdict (a false positive) raises [Opt_ineff.Breach],
   which we surface as a failure; the return is the per-compile
   failure list plus the total finding count, so the `make
   analyze-smoke` gate can assert both "zero false positives" and
   "the analysis actually finds things". *)
let analyze_smoke ?jobs ?n ?seed ~sources () : (string * string) list * int =
  let results =
    Edge_parallel.Pool.run ?jobs
      (fun (name, src, cname, config) ->
        let label = Printf.sprintf "%s/%s" name cname in
        match Edge_lang.Parser.parse src with
        | Error e -> ([ (label, "parse: " ^ e) ], 0)
        | Ok ast -> (
            match Edge_lang.Lower.lower ast with
            | Error e -> ([ (label, "lower: " ^ e) ], 0)
            | Ok cfg -> (
                let found = ref 0 in
                let lint _f = incr found in
                match Dfp.Driver.compile_cfg ~check:true ~lint cfg config with
                | Ok _ -> ([], !found)
                | Error e -> ([ (label, e) ], !found)
                | exception Dfp.Opt_ineff.Breach msg ->
                    ([ (label, "false positive: " ^ msg) ], !found))))
      (smoke_tasks ?n ?seed ~sources ())
  in
  ( List.concat_map fst results,
    List.fold_left (fun acc (_, c) -> acc + c) 0 results )
