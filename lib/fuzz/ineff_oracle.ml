(* Exhaustive cross-validation of ineffectuality verdicts.

   [Edge_ir.Psi_ssa.ineffectuality] proves sites dead (and guards
   droppable) symbolically, with BDDs over the block's enumeration
   variables.  This module re-proves the claims the way the fuzz
   enumerator re-proves the lattice checker: enumerate every assignment
   of those variables and evaluate the gating semantics *concretely*
   (plain booleans, a per-assignment fixpoint over the same step rules,
   then a concrete backward effectuality pass).  It shares the variable
   *allocation* with [Pgate] — which sites and live-ins get variables,
   and the compare-sharing — but none of the BDD machinery, so a bug in
   BDD construction or in the symbolic fixpoint shows up as a
   disagreement here.

   The contract is zero false positives: every site the plan deletes
   must be concretely ineffectual on EVERY assignment (and, if it can
   fault, must concretely never fire), and every guard the plan drops
   must leave the concrete fire region bit-identical on EVERY
   assignment.  A disagreement renders as a [check[pass=opt_ineff ...]]
   diagnostic, which the oracle classifies as a Checker breach.

   Blocks whose variable count exceeds [max_vars] are skipped — the
   exponential oracle excuses itself, it never guesses. *)

module Hb = Edge_ir.Hblock
module Tac = Edge_ir.Tac
module Temp = Edge_ir.Temp
module O = Edge_isa.Opcode
module Pg = Edge_ir.Pgate

let ( let* ) = Result.bind
let default_max_vars = 10

(* Concrete per-site state for one assignment: fired / value-true /
   value-underivable booleans. *)
type state = { e : bool array; svt : bool array; svu : bool array }

let avail (g : Pg.t) (st : state) t =
  match Temp.Map.find_opt t g.Pg.sites with
  | None -> true
  | Some ss -> List.exists (fun i -> st.e.(i)) ss

let temp_val (g : Pg.t) (st : state) (asg : bool array) t =
  match Temp.Map.find_opt t g.Pg.sites with
  | None -> (
      match Hashtbl.find_opt g.Pg.livein_var t with
      | Some pos -> (asg.(pos), false)
      | None -> (false, true))
  | Some ss ->
      ( List.exists (fun i -> st.e.(i) && st.svt.(i)) ss,
        List.exists (fun i -> st.e.(i) && st.svu.(i)) ss )

let op_val g st asg = function
  | Tac.C c -> (Int64.logand c 1L <> 0L, false)
  | Tac.T t -> temp_val g st asg t

let op_avail g st = function Tac.C _ -> true | Tac.T t -> avail g st t

let is_false_op g st asg op =
  let vt, vu = op_val g st asg op in
  (not vt) && not vu

let guard_matched g st asg = function
  | None -> true
  | Some gd ->
      List.exists
        (fun p ->
          let vt, vu = temp_val g st asg p in
          let pol = if gd.Hb.gpol then vt && not vu else (not vt) && not vu in
          avail g st p && pol)
        gd.Hb.gpreds

(* fire region of a site with its explicit guard ignored: data
   availability alone (sand short-circuits on a false left operand) *)
let fire_unguarded g st asg i =
  match g.Pg.body.(i).Hb.hop with
  | Hb.Sand { a; b; _ } ->
      avail g st a && (is_false_op g st asg (Tac.T a) || avail g st b)
  | _ -> List.for_all (fun t -> avail g st t) (Hb.data_uses g.Pg.body.(i))

(* Evaluate the gating fixpoint concretely for one assignment — the
   boolean twin of [Pgate.analyze]'s step function. *)
let eval_assignment (g : Pg.t) (asg : bool array) : (state, string) result =
  let body = g.Pg.body in
  let len = Array.length body in
  let st =
    {
      e = Array.make len false;
      svt = Array.make len false;
      svu = Array.make len false;
    }
  in
  let step i hi =
    st.e.(i) <- guard_matched g st asg hi.Hb.guard && fire_unguarded g st asg i;
    match g.Pg.site_var.(i) with
    | Some (pos, neg) ->
        st.svt.(i) <- (if neg then not asg.(pos) else asg.(pos));
        st.svu.(i) <- false
    | None -> (
        match hi.Hb.hop with
        | Hb.Op (Tac.Un { op = O.Mov; a; _ }) ->
            let vt, vu = op_val g st asg a in
            st.svt.(i) <- vt;
            st.svu.(i) <- vu
        | Hb.Op (Tac.Un { op = O.Not; a; _ }) ->
            let vt, vu = op_val g st asg a in
            st.svt.(i) <- op_avail g st a && (not vt) && not vu;
            st.svu.(i) <- vu
        | Hb.Op (Tac.Un { op = O.Neg; a; _ }) ->
            let vt, vu = op_val g st asg a in
            st.svt.(i) <- vt;
            st.svu.(i) <- vu
        | Hb.Sand { a; b; _ } ->
            let vta, vua = op_val g st asg (Tac.T a) in
            let vtb, vub = op_val g st asg (Tac.T b) in
            let ta = vta && not vua in
            st.svt.(i) <- ta && vtb;
            st.svu.(i) <- vua || (ta && vub)
        | _ -> st.svu.(i) <- true)
  in
  let snapshot () = (Array.copy st.e, Array.copy st.svt, Array.copy st.svu) in
  let max_rounds = (2 * len) + 16 in
  let rec iterate round prev =
    if round > max_rounds then Error "concrete fixpoint did not converge"
    else begin
      Array.iteri step body;
      let cur = snapshot () in
      if cur = prev then Ok st else iterate (round + 1) cur
    end
  in
  iterate 0 (snapshot ())

let show_assignment (g : Pg.t) (asg : bool array) =
  if Array.length asg = 0 then "[]"
  else
    "["
    ^ String.concat " "
        (List.init (Array.length asg) (fun v ->
             Printf.sprintf "%s=%d" g.Pg.names.(v) (if asg.(v) then 1 else 0)))
    ^ "]"

(* The concrete backward effectuality: same roots and propagation rules
   as [Psi_ssa.ineffectuality], evaluated per assignment on booleans.
   [eff.(i).(a)] — can site [i]'s firing on assignment [a] still reach
   an obligation? *)
let concrete_eff (h : Hb.t) (g : Pg.t) (states : state array) =
  let body = g.Pg.body in
  let len = Array.length body in
  let n_asg = Array.length states in
  let full_cons = Hashtbl.create 16 and data_cons = Hashtbl.create 16 in
  let add tbl t j =
    Hashtbl.replace tbl t
      (j :: Option.value ~default:[] (Hashtbl.find_opt tbl t))
  in
  Array.iteri
    (fun j hi ->
      List.iter (fun t -> add full_cons t j) (Hb.guard_uses hi.Hb.guard);
      match hi.Hb.hop with
      | Hb.Sand { a; b; _ } ->
          add full_cons a j;
          add full_cons b j
      | _ -> List.iter (fun t -> add data_cons t j) (Hb.data_uses hi))
    body;
  let out_producers =
    List.fold_left
      (fun s (_, prod) -> Temp.Set.add prod s)
      Temp.Set.empty h.Hb.houts
  in
  let exit_preds =
    List.fold_left
      (fun s ex ->
        List.fold_left
          (fun s p -> Temp.Set.add p s)
          s
          (Hb.guard_uses ex.Hb.eguard))
      Temp.Set.empty h.Hb.hexits
  in
  let root = Array.make len false in
  Array.iteri
    (fun i hi ->
      (match hi.Hb.hop with
      | Hb.Op (Tac.Store _) | Hb.Null_write _ | Hb.Null_store _ ->
          root.(i) <- true
      | _ -> ());
      match Hb.hop_def hi.Hb.hop with
      | Some d when Temp.Set.mem d out_producers || Temp.Set.mem d exit_preds
        ->
          root.(i) <- true
      | _ -> ())
    body;
  let eff = Array.init len (fun _ -> Array.make n_asg false) in
  let anywhere j = Array.exists Fun.id eff.(j) in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to len - 1 do
      let cons_full, cons_data =
        match Hb.hop_def body.(i).Hb.hop with
        | None -> ([], [])
        | Some d ->
            ( Option.value ~default:[] (Hashtbl.find_opt full_cons d),
              Option.value ~default:[] (Hashtbl.find_opt data_cons d) )
      in
      let full_live = root.(i) || List.exists anywhere cons_full in
      for a = 0 to n_asg - 1 do
        if (not eff.(i).(a)) && states.(a).e.(i) then
          if full_live || List.exists (fun j -> eff.(j).(a)) cons_data then begin
            eff.(i).(a) <- true;
            changed := true
          end
      done
    done
  done;
  eff

let breach h where msg =
  Edge_check.Diag.to_string
    (Edge_check.Diag.make ~pass:"opt_ineff" ~block:h.Hb.hname ~where
       Edge_check.Diag.Structure
       ("ineffectuality cross-validation breach: " ^ msg))

(* Re-prove a plan by enumeration.  [Ok ()] also covers the excused
   skips (too many variables, inconclusive analysis) — the enumerator
   never guesses. *)
let check_plan ?(max_vars = default_max_vars) (h : Hb.t)
    (p : Dfp.Opt_ineff.plan) : (unit, string) result =
  match Pg.analyze h with
  | Error _ -> Ok () (* symbolic side skipped too: nothing was claimed *)
  | Ok g ->
      if g.Pg.nvars > max_vars then Ok ()
      else begin
        let n_asg = 1 lsl g.Pg.nvars in
        let asgs =
          Array.init n_asg (fun a ->
              Array.init g.Pg.nvars (fun v -> (a lsr v) land 1 = 1))
        in
        let rec eval_all acc a =
          if a >= n_asg then Ok (Array.of_list (List.rev acc))
          else
            match eval_assignment g asgs.(a) with
            | Error e -> Error (breach h "body" e)
            | Ok st -> eval_all (st :: acc) (a + 1)
        in
        let* states = eval_all [] 0 in
        let eff = concrete_eff h g states in
        let first_asg pred =
          let r = ref None in
          for a = n_asg - 1 downto 0 do
            if pred a then r := Some a
          done;
          !r
        in
        let check_dead i =
          let can_fault =
            match g.Pg.body.(i).Hb.hop with
            | Hb.Op instr -> Tac.can_raise instr
            | _ -> false
          in
          match first_asg (fun a -> eff.(i).(a)) with
          | Some a ->
              Error
                (breach h
                   (Printf.sprintf "I%d" i)
                   (Printf.sprintf
                      "site deleted as ineffectual but contributes on %s"
                      (show_assignment g asgs.(a))))
          | None -> (
              if not can_fault then Ok ()
              else
                (* a faulting site may only be deleted if it never fires *)
                match first_asg (fun a -> states.(a).e.(i)) with
                | None -> Ok ()
                | Some a ->
                    Error
                      (breach h
                         (Printf.sprintf "I%d" i)
                         (Printf.sprintf
                            "deleted site can fault and still fires on %s"
                            (show_assignment g asgs.(a)))))
        in
        let check_drop i =
          match
            first_asg (fun a ->
                fire_unguarded g states.(a) asgs.(a) i <> states.(a).e.(i))
          with
          | None -> Ok ()
          | Some a ->
              Error
                (breach h
                   (Printf.sprintf "I%d" i)
                   (Printf.sprintf
                      "guard dropped but the fire region changes on %s"
                      (show_assignment g asgs.(a))))
        in
        let rec all f = function
          | [] -> Ok ()
          | i :: rest -> (
              match f i with Ok () -> all f rest | Error _ as e -> e)
        in
        let* () = all check_dead p.Dfp.Opt_ineff.pdead in
        all check_drop p.Dfp.Opt_ineff.pdrops
      end

(* Install the enumerator as [Opt_ineff]'s cross-validation hook: every
   plan computed by any compile in this process is re-proved before it
   is applied.  Module-init so worker domains inherit it. *)
let install () =
  Dfp.Opt_ineff.cross_validate := Some (fun h p -> check_plan h p)
