(* Kernel AST -> parseable kernel source. Used to print minimized
   reproducers and to persist crash-corpus entries, so the output must
   round-trip through Edge_lang.Parser. *)

module A = Edge_lang.Ast

let ty_name = function
  | A.Tint -> "int"
  | A.Tfloat -> "float"
  | A.Tptr A.I8 -> "byte*"
  | A.Tptr A.I32 -> "int4*"
  | A.Tptr A.I64 -> "int*"
  | A.Tptr A.F64 -> "float*"

let pp_body buf (body : A.stmt list) =
  let rec pe (e : A.expr) =
    match e with
    | A.Int v -> Buffer.add_string buf (Int64.to_string v)
    | A.Float f -> Buffer.add_string buf (string_of_float f)
    | A.Var v -> Buffer.add_string buf v
    | A.Bin (op, a, b) ->
        Buffer.add_char buf '(';
        pe a;
        Buffer.add_string buf
          (match op with
          | A.Add -> " + " | A.Sub -> " - " | A.Mul -> " * " | A.Div -> " / "
          | A.Rem -> " % " | A.BAnd -> " & " | A.BOr -> " | " | A.BXor -> " ^ "
          | A.Shl -> " << " | A.Shr -> " >> " | A.Lt -> " < " | A.Le -> " <= "
          | A.Gt -> " > " | A.Ge -> " >= " | A.Eq -> " == " | A.Ne -> " != "
          | A.LAnd -> " && " | A.LOr -> " || ");
        pe b;
        Buffer.add_char buf ')'
    | A.Un (op, a) ->
        Buffer.add_string buf
          (match op with
          | A.Neg -> "-" | A.LNot -> "!" | A.BNot -> "~"
          | A.Itof -> "itof" | A.Ftoi -> "ftoi");
        Buffer.add_char buf '(';
        pe a;
        Buffer.add_char buf ')'
    | A.Index (v, i) ->
        Buffer.add_string buf v;
        Buffer.add_char buf '[';
        pe i;
        Buffer.add_char buf ']'
    | A.Cond (c, a, b) ->
        Buffer.add_char buf '(';
        pe c;
        Buffer.add_string buf " ? ";
        pe a;
        Buffer.add_string buf " : ";
        pe b;
        Buffer.add_char buf ')'
  in
  let rec ps ind (s : A.stmt) =
    Buffer.add_string buf (String.make ind ' ');
    match s with
    | A.Decl (ty, n, init) ->
        Buffer.add_string buf (ty_name ty ^ " " ^ n);
        (match init with
        | Some e ->
            Buffer.add_string buf " = ";
            pe e
        | None -> ());
        Buffer.add_string buf ";\n"
    | A.Assign (n, e) ->
        Buffer.add_string buf (n ^ " = ");
        pe e;
        Buffer.add_string buf ";\n"
    | A.Store (n, i, v) ->
        Buffer.add_string buf n;
        Buffer.add_char buf '[';
        pe i;
        Buffer.add_string buf "] = ";
        pe v;
        Buffer.add_string buf ";\n"
    | A.If (c, a, b) ->
        Buffer.add_string buf "if (";
        pe c;
        Buffer.add_string buf ") {\n";
        List.iter (ps (ind + 2)) a;
        Buffer.add_string buf (String.make ind ' ' ^ "}");
        if b <> [] then begin
          Buffer.add_string buf " else {\n";
          List.iter (ps (ind + 2)) b;
          Buffer.add_string buf (String.make ind ' ' ^ "}")
        end;
        Buffer.add_string buf "\n"
    | A.While (c, b) ->
        Buffer.add_string buf "while (";
        pe c;
        Buffer.add_string buf ") {\n";
        List.iter (ps (ind + 2)) b;
        Buffer.add_string buf (String.make ind ' ' ^ "}\n")
    | A.For (i, c, st, b) ->
        Buffer.add_string buf "for (";
        (match i with
        | Some (A.Assign (n, e)) ->
            Buffer.add_string buf (n ^ " = ");
            pe e
        | _ -> ());
        Buffer.add_string buf "; ";
        (match c with Some e -> pe e | None -> ());
        Buffer.add_string buf "; ";
        (match st with
        | Some (A.Assign (n, e)) ->
            Buffer.add_string buf (n ^ " = ");
            pe e
        | _ -> ());
        Buffer.add_string buf ") {\n";
        List.iter (ps (ind + 2)) b;
        Buffer.add_string buf (String.make ind ' ' ^ "}\n")
    | A.Break -> Buffer.add_string buf "break;\n"
    | A.Continue -> Buffer.add_string buf "continue;\n"
    | A.Return (Some e) ->
        Buffer.add_string buf "return ";
        pe e;
        Buffer.add_string buf ";\n"
    | A.Return None -> Buffer.add_string buf "return;\n"
  in
  List.iter (ps 2) body

let body_to_string (k : A.kernel) =
  let buf = Buffer.create 256 in
  pp_body buf k.A.body;
  Buffer.contents buf

let kernel_to_string (k : A.kernel) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf ("kernel " ^ k.A.kname ^ "(");
  List.iteri
    (fun i (p : A.param) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (ty_name p.A.pty ^ " " ^ p.A.pname))
    k.A.params;
  Buffer.add_string buf ") {\n";
  pp_body buf k.A.body;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
