(* The crash corpus: kernel sources under [test/corpus/*.k], one file
   per previously-found (and since fixed) compiler or simulator bug.
   The fuzz executable appends minimized reproducers here; the test
   suite replays every entry through the full oracle on each run, so a
   fixed bug stays fixed. *)

let extension = ".k"

let load_dir dir : (string * string) list =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f extension)
    |> List.sort String.compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           let ic = open_in_bin path in
           let n = in_channel_length ic in
           let contents = really_input_string ic n in
           close_in ic;
           (f, contents))

let save ~dir ~name ~contents =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let base =
    if Filename.check_suffix name extension then name else name ^ extension
  in
  let path = Filename.concat dir base in
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc;
  path
