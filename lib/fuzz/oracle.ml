(* The differential oracle.

   A generated kernel is executed by the reference interpreter, then
   compiled under every configuration and executed by the functional
   dataflow executor and (optionally) the cycle-accurate simulator. All
   runs must agree on:

   - the return value,
   - the final memory image,
   - the number of committed architectural stores (predication may move
     stores between blocks or null them, but every correctly predicated
     store must commit exactly once on every path — Section 4.2),
   - whether the program faults.

   Independently, every compiled artifact is checked against the static
   ISA invariants in [Validate] — so a compiler bug that happens not to
   change observable behaviour (an unencodable block, a predicate path
   that starves an output) is still caught.

   The polynomial lattice checker ([Edge_check]) runs inside the
   compile (per-pass hooks in the driver) and is cross-validated
   against the enumerator here: if the enumerator flags a program the
   checker passed without skipping a block, that is a [Checker]
   failure — a breach of the superset-or-equal contract — and the
   exponential oracle has caught a soundness hole in the polynomial
   one. *)

module A = Edge_lang.Ast
module Conv = Edge_isa.Conventions

type outcome = {
  ret : int64;
  mem : Edge_isa.Mem.t;
  stores : int;  (** committed architectural stores *)
  fault : bool;
}

type kind = Validator | Mismatch | Exec_error | Checker

type fail = {
  config : string;  (** config name, or ["-"] before compilation *)
  kind : kind;
  message : string;
}

exception Skip
(** The reference interpreter ran out of fuel: the kernel (which the
    generator never produces, but shrinking can) does not terminate, so
    there is nothing to compare. *)

let kind_name = function
  | Validator -> "validator"
  | Mismatch -> "mismatch"
  | Exec_error -> "error"
  | Checker -> "checker"

let interp_fuel = 3_000_000

let is_fault e = String.length e >= 5 && String.sub e 0 5 = "fault"

let run_reference (ast : A.kernel) : (outcome, fail) result =
  let mem = Gen.default_mem () in
  match Edge_lang.Interp.run ~fuel:interp_fuel ast ~args:Gen.default_args ~mem with
  | Error "fault: fuel exhausted" -> raise Skip
  | Ok o ->
      Ok
        {
          ret = Option.value ~default:0L o.Edge_lang.Interp.return_value;
          mem;
          stores = Edge_isa.Mem.store_count mem;
          fault = false;
        }
  | Error e when is_fault e ->
      Ok { ret = 0L; mem; stores = 0; fault = true }
  | Error e ->
      Error { config = "-"; kind = Exec_error; message = "interp: " ^ e }

(* every compile in the fuzz process has its ineffectuality plans
   re-proved by the exhaustive enumerator; a disproved plan raises
   [Breach] with a check[pass=opt_ineff ...] diagnostic, which
   [check_config] below classifies as a Checker breach *)
let () = Ineff_oracle.install ()

let compile ?check ast config =
  match Edge_lang.Lower.lower ast with
  | Error e -> Error ("lower: " ^ e)
  | Ok cfg -> (
      match Dfp.Driver.compile_cfg ?check cfg config with
      | Error e -> Error ("compile: " ^ e)
      | Ok c -> Ok c
      | exception Dfp.Opt_ineff.Breach msg -> Error msg)

let prep_regs () =
  let regs = Array.make 128 0L in
  List.iteri (fun i v -> regs.(Conv.param_reg i) <- v) Gen.default_args;
  regs

let run_functional (c : Dfp.Driver.compiled) : (outcome, string) result =
  let regs = prep_regs () in
  let mem = Gen.default_mem () in
  match Edge_sim.Functional.run c.Dfp.Driver.program ~regs ~mem with
  | Ok _ ->
      Ok
        {
          ret = regs.(Conv.result_reg);
          mem;
          stores = Edge_isa.Mem.store_count mem;
          fault = false;
        }
  | Error e when is_fault e -> Ok { ret = 0L; mem; stores = 0; fault = true }
  | Error e -> Error ("functional: " ^ e)

let run_cycle ?(machine = Edge_sim.Machine.default) (c : Dfp.Driver.compiled)
    : (outcome, string) result =
  let regs = prep_regs () in
  let mem = Gen.default_mem () in
  let placement n =
    match List.assoc_opt n c.Dfp.Driver.placements with
    | Some p -> p
    | None -> [||]
  in
  match
    Edge_sim.Backend.run ~machine ~placement c.Dfp.Driver.program ~regs ~mem
  with
  | Ok _ ->
      Ok
        {
          ret = regs.(Conv.result_reg);
          mem;
          stores = Edge_isa.Mem.store_count mem;
          fault = false;
        }
  | Error e when is_fault e -> Ok { ret = 0L; mem; stores = 0; fault = true }
  | Error e -> Error ("cycle: " ^ e)

(* every configuration the compiler supports, paper and auxiliary *)
let configs =
  ("Merge", Dfp.Config.merge)
  :: ("Mov4", { Dfp.Config.both with Dfp.Config.use_mov4 = true })
  :: ("Sand", Dfp.Config.sand)
  :: Dfp.Config.all_paper_configs

let config_names = List.map fst configs

(* The timing-backend axis of the oracle. The default covers the tiled
   grid alone (the historical behaviour, and what the per-commit smoke
   budgets for); matrix campaigns add the in-order core, making every
   kernel × config pair prove that both timing backends reproduce the
   reference results. *)
let default_machines = [ ("grid", Edge_sim.Machine.default) ]

let matrix_machines =
  [
    ("grid", Edge_sim.Machine.default);
    ("inorder", Edge_sim.Machine.inorder_edge);
  ]

let agree (a : outcome) (b : outcome) =
  a.fault = b.fault
  && (a.fault
     || Int64.equal a.ret b.ret
        && Edge_isa.Mem.equal a.mem b.mem
        && a.stores = b.stores)

let describe_disagreement ~name ~executor (r : outcome) (reference : outcome) =
  Printf.sprintf
    "%s %s: ret %Ld vs %Ld, stores %d vs %d, mem %s (fault %b vs %b)" name
    executor r.ret reference.ret r.stores reference.stores
    (if r.fault || reference.fault || Edge_isa.Mem.equal r.mem reference.mem
     then "equal"
     else "differs")
    r.fault reference.fault

(* Check a single compiled artifact + behaviour under one configuration
   against the reference outcome.  [Ok n]: clean; [n] blocks were too
   wide for the enumerator and got only structural+lattice checks. *)
let check_config ?(cycle = true) ?(machines = default_machines)
    ?(validate = true) ?(check = true) ?max_vars ~reference ast (name, config)
    : (int, fail) result =
  match compile ~check ast config with
  | Error e when Edge_check.Diag.parse_key e <> None ->
      (* the per-pass checker rejected the compile; record what the
         enumerator thinks of the finished program for cross-checking *)
      let enum_view =
        match compile ~check:false ast config with
        | Error e2 -> Printf.sprintf " (recompile without check failed: %s)" e2
        | Ok compiled -> (
            match Validate.program ?max_vars compiled.Dfp.Driver.program with
            | Ok skipped ->
                Printf.sprintf
                  " (enumerator finds the final program clean, %d blocks \
                   skipped)"
                  skipped
            | Error es ->
                Printf.sprintf " (enumerator agrees on the final program: %s)"
                  (String.concat "; " es))
      in
      Error { config = name; kind = Checker; message = e ^ enum_view }
  | Error e -> Error { config = name; kind = Exec_error; message = e }
  | Ok compiled -> (
      let validator_verdict =
        if validate then
          match Validate.program ?max_vars compiled.Dfp.Driver.program with
          | Ok skipped -> Ok skipped
          | Error es -> (
              let message = String.concat "; " es in
              if not check then
                Error { config = name; kind = Validator; message }
              else
                (* the compile passed the lattice checker: either the
                   checker skipped the offending block (excused) or the
                   superset-or-equal contract is breached *)
                let r = Edge_check.Check.program compiled.Dfp.Driver.program in
                match r.Edge_check.Check.skipped with
                | 0 ->
                    Error
                      {
                        config = name;
                        kind = Checker;
                        message =
                          "cross-validation breach: enumerator flags a \
                           program the lattice checker passed: " ^ message;
                      }
                | _ -> Error { config = name; kind = Validator; message })
        else Ok 0
      in
      match validator_verdict with
      | Error _ as e -> e
      | Ok skipped -> (
          match run_functional compiled with
          | Error e -> Error { config = name; kind = Exec_error; message = e }
          | Ok r when not (agree reference r) ->
              Error
                {
                  config = name;
                  kind = Mismatch;
                  message =
                    describe_disagreement ~name ~executor:"functional" r
                      reference;
                }
          | Ok _ ->
              if not cycle then Ok skipped
              else
                (* every machine on the axis must reproduce the
                   reference results — this is the backend-differential
                   gate for the in-order core *)
                let rec machine_loop = function
                  | [] -> Ok skipped
                  | (mname, machine) :: rest -> (
                      match run_cycle ~machine compiled with
                      | Error e ->
                          Error
                            {
                              config = name;
                              kind = Exec_error;
                              message = Printf.sprintf "[%s] %s" mname e;
                            }
                      | Ok r when not (agree reference r) ->
                          Error
                            {
                              config = name;
                              kind = Mismatch;
                              message =
                                describe_disagreement ~name
                                  ~executor:("cycle[" ^ mname ^ "]")
                                  r reference;
                            }
                      | Ok _ -> machine_loop rest)
                in
                machine_loop machines))

(* [Ok n]: all configs clean; [n] sums the enumerator-skipped block
   counts across configurations, so the fuzz report can say how much of
   the corpus actually got the exponential treatment. *)
let check_uncached ?cycle ?machines ?validate ?check ?max_vars
    (ast : A.kernel) : (int, fail) result =
  match run_reference ast with
  | Error _ as e -> e
  | Ok reference ->
      let rec go acc = function
        | [] -> Ok acc
        | c :: rest -> (
            match
              check_config ?cycle ?machines ?validate ?check ?max_vars
                ~reference ast c
            with
            | Error _ as e -> e
            | Ok skipped -> go (acc + skipped) rest)
      in
      go 0 configs

(* persistent-cache key: the kernel's content plus everything that can
   change a verdict — oracle switches, the config list, and the
   simulator revision *)
let check_cache_key ?cycle ?(machines = default_machines) ?validate ?check
    ?max_vars ast =
  String.concat "|"
    [
      "fuzz-oracle-v4";
      Edge_sim.Block_jit.revision;
      (* one entry per machine on the axis: its backend's revision plus
         the full description, so axis changes re-verify *)
      String.concat ","
        (List.map
           (fun (mn, m) ->
             Printf.sprintf "%s=%s:%s" mn
               (Edge_sim.Backend.revision m)
               (Digest.to_hex (Digest.string (Marshal.to_string m []))))
           machines);
      Digest.to_hex (Digest.string (Marshal.to_string (ast : A.kernel) []));
      string_of_bool (Option.value cycle ~default:true);
      string_of_bool (Option.value validate ~default:true);
      string_of_bool (Option.value check ~default:true);
      (match max_vars with None -> "-" | Some v -> string_of_int v);
      String.concat "," config_names;
    ]

let check ?cycle ?machines ?validate ?check ?max_vars ?cache (ast : A.kernel)
    : (int, fail) result =
  match cache with
  | None -> check_uncached ?cycle ?machines ?validate ?check ?max_vars ast
  | Some c -> (
      let key =
        check_cache_key ?cycle ?machines ?validate ?check ?max_vars ast
      in
      match Edge_parallel.Disk_cache.find c ~key with
      | Some skipped -> Ok skipped
      | None -> (
          match
            check_uncached ?cycle ?machines ?validate ?check ?max_vars ast
          with
          | Ok skipped ->
              (* only clean verdicts are cached: a failure must re-run
                 so diagnosis always sees a fresh, complete reproduction *)
              Edge_parallel.Disk_cache.store c ~key skipped;
              Ok skipped
          | Error _ as e -> e))

(* String-error wrapper matching the historical Diff_check interface. *)
let check_kernel ?cycle (ast : A.kernel) : (unit, string) result =
  match (try `R (check ?cycle ast) with Skip -> `Skip) with
  | `Skip -> Ok ()
  | `R (Ok _) -> Ok ()
  | `R (Error f) ->
      Error (Printf.sprintf "%s [%s] %s" f.config (kind_name f.kind) f.message)

(* Trace a kernel's cycle-simulator run under one configuration (by
   name) and render the deterministic text form. bin/fuzz dumps this
   next to a minimized reproducer's corpus entry, so a failure's
   schedule is diagnosable without re-running the fuzzer; the trace is
   collected even when the run faults (the header records the outcome,
   the events stop at the fault). *)
let trace_kernel ?(config = "Both") (ast : A.kernel) : (string, string) result
    =
  match List.find_opt (fun (n, _) -> String.equal n config) configs with
  | None -> Error (Printf.sprintf "unknown config %s" config)
  | Some (name, cfg) -> (
      (* tracing wants the artifact even when the checker would reject
         it — the caller is diagnosing exactly such a failure *)
      match compile ~check:false ast cfg with
      | Error e -> Error e
      | Ok c ->
          let obs, events, _ = Edge_obs.Obs.collector () in
          let regs = prep_regs () in
          let mem = Gen.default_mem () in
          let placement n =
            match List.assoc_opt n c.Dfp.Driver.placements with
            | Some p -> p
            | None -> [||]
          in
          let outcome =
            Edge_sim.Cycle_sim.run ~placement ~obs c.Dfp.Driver.program ~regs
              ~mem
          in
          let header =
            [
              ("config", name);
              ( "outcome",
                match outcome with
                | Ok s -> "cycles " ^ string_of_int s.Edge_sim.Stats.cycles
                | Error e -> e );
            ]
          in
          Ok (Edge_obs.Trace.render_text ~header (events ())))

(* Does [ast] still fail under [config] (by name)? The shrinker's keep
   predicate: minimization must preserve the original failure's config
   and kind, not just "some failure".  For checker failures,
   [check_key] additionally pins the diagnostic's (pass, invariant)
   pair, so shrinking cannot wander from e.g. an opt_merge pred-or
   violation to an unrelated codegen structure error. *)
let still_fails ?cycle ?machines ?validate ?check ?check_key ?max_vars ~config
    ~kind (ast : A.kernel) : bool =
  match
    (try
       `R
         (match List.find_opt (fun (n, _) -> String.equal n config) configs with
         | None ->
             check_uncached ?cycle ?machines ?validate ?check ?max_vars ast
         | Some c -> (
             match run_reference ast with
             | Error _ as e -> e
             | Ok reference ->
                 check_config ?cycle ?machines ?validate ?check ?max_vars
                   ~reference ast c))
     with Skip -> `Skip)
  with
  | `Skip -> false
  | `R (Ok _) -> false
  | `R (Error f) -> (
      f.kind = kind
      &&
      match check_key with
      | None -> true
      | Some key -> (
          match Edge_check.Diag.parse_key f.message with
          | Some key' -> key' = key
          | None -> false))
