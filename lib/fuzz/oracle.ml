(* The differential oracle.

   A generated kernel is executed by the reference interpreter, then
   compiled under every configuration and executed by the functional
   dataflow executor and (optionally) the cycle-accurate simulator. All
   runs must agree on:

   - the return value,
   - the final memory image,
   - the number of committed architectural stores (predication may move
     stores between blocks or null them, but every correctly predicated
     store must commit exactly once on every path — Section 4.2),
   - whether the program faults.

   Independently, every compiled artifact is checked against the static
   ISA invariants in [Validate] — so a compiler bug that happens not to
   change observable behaviour (an unencodable block, a predicate path
   that starves an output) is still caught. *)

module A = Edge_lang.Ast
module Conv = Edge_isa.Conventions

type outcome = {
  ret : int64;
  mem : Edge_isa.Mem.t;
  stores : int;  (** committed architectural stores *)
  fault : bool;
}

type kind = Validator | Mismatch | Exec_error

type fail = {
  config : string;  (** config name, or ["-"] before compilation *)
  kind : kind;
  message : string;
}

exception Skip
(** The reference interpreter ran out of fuel: the kernel (which the
    generator never produces, but shrinking can) does not terminate, so
    there is nothing to compare. *)

let kind_name = function
  | Validator -> "validator"
  | Mismatch -> "mismatch"
  | Exec_error -> "error"

let interp_fuel = 3_000_000

let is_fault e = String.length e >= 5 && String.sub e 0 5 = "fault"

let run_reference (ast : A.kernel) : (outcome, fail) result =
  let mem = Gen.default_mem () in
  match Edge_lang.Interp.run ~fuel:interp_fuel ast ~args:Gen.default_args ~mem with
  | Error "fault: fuel exhausted" -> raise Skip
  | Ok o ->
      Ok
        {
          ret = Option.value ~default:0L o.Edge_lang.Interp.return_value;
          mem;
          stores = Edge_isa.Mem.store_count mem;
          fault = false;
        }
  | Error e when is_fault e ->
      Ok { ret = 0L; mem; stores = 0; fault = true }
  | Error e ->
      Error { config = "-"; kind = Exec_error; message = "interp: " ^ e }

let compile ast config =
  match Edge_lang.Lower.lower ast with
  | Error e -> Error ("lower: " ^ e)
  | Ok cfg -> (
      match Dfp.Driver.compile_cfg cfg config with
      | Error e -> Error ("compile: " ^ e)
      | Ok c -> Ok c)

let prep_regs () =
  let regs = Array.make 128 0L in
  List.iteri (fun i v -> regs.(Conv.param_reg i) <- v) Gen.default_args;
  regs

let run_functional (c : Dfp.Driver.compiled) : (outcome, string) result =
  let regs = prep_regs () in
  let mem = Gen.default_mem () in
  match Edge_sim.Functional.run c.Dfp.Driver.program ~regs ~mem with
  | Ok _ ->
      Ok
        {
          ret = regs.(Conv.result_reg);
          mem;
          stores = Edge_isa.Mem.store_count mem;
          fault = false;
        }
  | Error e when is_fault e -> Ok { ret = 0L; mem; stores = 0; fault = true }
  | Error e -> Error ("functional: " ^ e)

let run_cycle (c : Dfp.Driver.compiled) : (outcome, string) result =
  let regs = prep_regs () in
  let mem = Gen.default_mem () in
  let placement n =
    match List.assoc_opt n c.Dfp.Driver.placements with
    | Some p -> p
    | None -> [||]
  in
  match Edge_sim.Cycle_sim.run ~placement c.Dfp.Driver.program ~regs ~mem with
  | Ok _ ->
      Ok
        {
          ret = regs.(Conv.result_reg);
          mem;
          stores = Edge_isa.Mem.store_count mem;
          fault = false;
        }
  | Error e when is_fault e -> Ok { ret = 0L; mem; stores = 0; fault = true }
  | Error e -> Error ("cycle: " ^ e)

(* every configuration the compiler supports, paper and auxiliary *)
let configs =
  ("Merge", Dfp.Config.merge)
  :: ("Mov4", { Dfp.Config.both with Dfp.Config.use_mov4 = true })
  :: ("Sand", Dfp.Config.sand)
  :: Dfp.Config.all_paper_configs

let config_names = List.map fst configs

let agree (a : outcome) (b : outcome) =
  a.fault = b.fault
  && (a.fault
     || Int64.equal a.ret b.ret
        && Edge_isa.Mem.equal a.mem b.mem
        && a.stores = b.stores)

let describe_disagreement ~name ~executor (r : outcome) (reference : outcome) =
  Printf.sprintf
    "%s %s: ret %Ld vs %Ld, stores %d vs %d, mem %s (fault %b vs %b)" name
    executor r.ret reference.ret r.stores reference.stores
    (if r.fault || reference.fault || Edge_isa.Mem.equal r.mem reference.mem
     then "equal"
     else "differs")
    r.fault reference.fault

(* Check a single compiled artifact + behaviour under one configuration
   against the reference outcome. *)
let check_config ?(cycle = true) ?(validate = true) ?max_vars ~reference ast
    (name, config) : (unit, fail) result =
  match compile ast config with
  | Error e -> Error { config = name; kind = Exec_error; message = e }
  | Ok compiled -> (
      let validator_verdict =
        if validate then
          match Validate.program ?max_vars compiled.Dfp.Driver.program with
          | Ok () -> Ok ()
          | Error es ->
              Error
                {
                  config = name;
                  kind = Validator;
                  message = String.concat "; " es;
                }
        else Ok ()
      in
      match validator_verdict with
      | Error _ as e -> e
      | Ok () -> (
          match run_functional compiled with
          | Error e -> Error { config = name; kind = Exec_error; message = e }
          | Ok r when not (agree reference r) ->
              Error
                {
                  config = name;
                  kind = Mismatch;
                  message =
                    describe_disagreement ~name ~executor:"functional" r
                      reference;
                }
          | Ok _ ->
              if not cycle then Ok ()
              else (
                match run_cycle compiled with
                | Error e ->
                    Error { config = name; kind = Exec_error; message = e }
                | Ok r when not (agree reference r) ->
                    Error
                      {
                        config = name;
                        kind = Mismatch;
                        message =
                          describe_disagreement ~name ~executor:"cycle" r
                            reference;
                      }
                | Ok _ -> Ok ())))

let check_uncached ?cycle ?validate ?max_vars (ast : A.kernel) :
    (unit, fail) result =
  match run_reference ast with
  | Error _ as e -> e
  | Ok reference ->
      let rec go = function
        | [] -> Ok ()
        | c :: rest -> (
            match check_config ?cycle ?validate ?max_vars ~reference ast c with
            | Error _ as e -> e
            | Ok () -> go rest)
      in
      go configs

(* persistent-cache key: the kernel's content plus everything that can
   change a verdict — oracle switches, the config list, and the
   simulator revision *)
let check_cache_key ?cycle ?validate ?max_vars ast =
  String.concat "|"
    [
      "fuzz-oracle-v1";
      Edge_sim.Cycle_sim.revision;
      Digest.to_hex (Digest.string (Marshal.to_string (ast : A.kernel) []));
      string_of_bool (Option.value cycle ~default:true);
      string_of_bool (Option.value validate ~default:true);
      (match max_vars with None -> "-" | Some v -> string_of_int v);
      String.concat "," config_names;
    ]

let check ?cycle ?validate ?max_vars ?cache (ast : A.kernel) :
    (unit, fail) result =
  match cache with
  | None -> check_uncached ?cycle ?validate ?max_vars ast
  | Some c -> (
      let key = check_cache_key ?cycle ?validate ?max_vars ast in
      match Edge_parallel.Disk_cache.find c ~key with
      | Some () -> Ok ()
      | None -> (
          match check_uncached ?cycle ?validate ?max_vars ast with
          | Ok () ->
              (* only clean verdicts are cached: a failure must re-run
                 so diagnosis always sees a fresh, complete reproduction *)
              Edge_parallel.Disk_cache.store c ~key ();
              Ok ()
          | Error _ as e -> e))

(* String-error wrapper matching the historical Diff_check interface. *)
let check_kernel ?cycle (ast : A.kernel) : (unit, string) result =
  match (try `R (check ?cycle ast) with Skip -> `Skip) with
  | `Skip -> Ok ()
  | `R (Ok ()) -> Ok ()
  | `R (Error f) ->
      Error (Printf.sprintf "%s [%s] %s" f.config (kind_name f.kind) f.message)

(* Trace a kernel's cycle-simulator run under one configuration (by
   name) and render the deterministic text form. bin/fuzz dumps this
   next to a minimized reproducer's corpus entry, so a failure's
   schedule is diagnosable without re-running the fuzzer; the trace is
   collected even when the run faults (the header records the outcome,
   the events stop at the fault). *)
let trace_kernel ?(config = "Both") (ast : A.kernel) : (string, string) result
    =
  match List.find_opt (fun (n, _) -> String.equal n config) configs with
  | None -> Error (Printf.sprintf "unknown config %s" config)
  | Some (name, cfg) -> (
      match compile ast cfg with
      | Error e -> Error e
      | Ok c ->
          let obs, events, _ = Edge_obs.Obs.collector () in
          let regs = prep_regs () in
          let mem = Gen.default_mem () in
          let placement n =
            match List.assoc_opt n c.Dfp.Driver.placements with
            | Some p -> p
            | None -> [||]
          in
          let outcome =
            Edge_sim.Cycle_sim.run ~placement ~obs c.Dfp.Driver.program ~regs
              ~mem
          in
          let header =
            [
              ("config", name);
              ( "outcome",
                match outcome with
                | Ok s -> "cycles " ^ string_of_int s.Edge_sim.Stats.cycles
                | Error e -> e );
            ]
          in
          Ok (Edge_obs.Trace.render_text ~header (events ())))

(* Does [ast] still fail under [config] (by name)? The shrinker's keep
   predicate: minimization must preserve the original failure's config
   and kind, not just "some failure". *)
let still_fails ?cycle ?validate ?max_vars ~config ~kind (ast : A.kernel) :
    bool =
  match
    (try
       `R
         (match List.find_opt (fun (n, _) -> String.equal n config) configs with
         | None -> check ?cycle ?validate ?max_vars ast
         | Some c -> (
             match run_reference ast with
             | Error _ as e -> e
             | Ok reference ->
                 check_config ?cycle ?validate ?max_vars ~reference ast c))
     with Skip -> `Skip)
  with
  | `Skip -> false
  | `R (Ok ()) -> false
  | `R (Error f) -> f.kind = kind
