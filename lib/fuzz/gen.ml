(* Seeded, size-parameterized generator of typed kernels for differential
   fuzzing.

   Programs are closed over a fixed memory layout: two int arrays A and B
   of 64 elements at fixed addresses, plus two scalar int parameters.
   Indices are masked to stay in bounds; divisors are forced non-zero;
   for loops have small constant bounds and while loops carry a bounded
   counter conjoined into their condition. Every generated program
   therefore terminates without faulting, and the reference interpreter,
   the functional simulator and the cycle simulator must agree exactly on
   the return value, the final memory image and the committed-store
   count.

   This is a superset of the original test/support generator: deeper
   control nesting, while loops, short-circuit condition chains and
   pointer-argument swapping are all in the grammar. Generation is
   deterministic per seed ([Random.State.make [| seed |]]), so any
   failure is reproducible from its (seed, size) pair alone. *)

module A = Edge_lang.Ast

let array_len = 64
let addr_a = 4096
let addr_b = 8192
let mem_size = 16384

type loop_ctx = Top | In_for | In_while

type env = {
  mutable vars : string list;  (* in-scope int variables *)
  mutable protected : string list;  (* induction variables: never reassigned *)
  mutable depth : int;  (* control-structure nesting *)
  mutable fresh : int;  (* monotonic name counter *)
  st : Random.State.t;
}

let max_depth = 3
let rint env n = Random.State.int env.st n
let rbool env = Random.State.bool env.st
let pick env l = List.nth l (rint env (List.length l))
let gen_const env = Int64.of_int (rint env 201 - 100)

let fresh_name env prefix =
  let n = env.fresh in
  env.fresh <- n + 1;
  Printf.sprintf "%s%d" prefix n

(* expression of int type over in-scope vars *)
let rec gen_expr env depth : A.expr =
  if depth <= 0 then gen_leaf env
  else
    match rint env 10 with
    | 0 | 1 -> gen_leaf env
    | 2 ->
        let op = pick env [ A.Add; A.Sub; A.Mul; A.BAnd; A.BOr; A.BXor ] in
        A.Bin (op, gen_expr env (depth - 1), gen_expr env (depth - 1))
    | 3 ->
        (* division with a guaranteed non-zero divisor *)
        let d = gen_expr env (depth - 1) in
        let nz = A.Bin (A.BOr, d, A.Int 1L) in
        A.Bin (pick env [ A.Div; A.Rem ], gen_expr env (depth - 1), nz)
    | 4 ->
        let op = pick env [ A.Lt; A.Le; A.Gt; A.Ge; A.Eq; A.Ne ] in
        A.Bin (op, gen_expr env (depth - 1), gen_expr env (depth - 1))
    | 5 -> gen_cond env (min 2 (depth - 1))
    | 6 -> A.Un (pick env [ A.Neg; A.BNot; A.LNot ], gen_expr env (depth - 1))
    | 7 ->
        (* bounded shift *)
        let amt = A.Int (Int64.of_int (rint env 8)) in
        A.Bin (pick env [ A.Shl; A.Shr ], gen_expr env (depth - 1), amt)
    | 8 ->
        let arr = pick env [ "A"; "B" ] in
        A.Index (arr, masked_index env (depth - 1))
    | _ ->
        A.Cond
          (gen_cond env 1, gen_expr env (depth - 1), gen_expr env (depth - 1))

and gen_leaf env =
  match rint env 3 with
  | 0 -> A.Int (gen_const env)
  | _ -> (
      match env.vars with
      | [] -> A.Int (gen_const env)
      | vs -> A.Var (pick env vs))

and masked_index env depth =
  A.Bin (A.BAnd, gen_expr env depth, A.Int (Int64.of_int (array_len - 1)))

(* boolean-shaped expression: short-circuit chains over comparisons, the
   shape the sand conversion (Section 7) and predicate-AND chains
   (Figure 3a) care about *)
and gen_cond env depth : A.expr =
  if depth <= 0 then
    let op = pick env [ A.Lt; A.Le; A.Gt; A.Ge; A.Eq; A.Ne ] in
    A.Bin (op, gen_expr env 1, gen_expr env 1)
  else
    match rint env 5 with
    | 0 | 1 ->
        A.Bin (A.LAnd, gen_cond env (depth - 1), gen_cond env (depth - 1))
    | 2 -> A.Bin (A.LOr, gen_cond env (depth - 1), gen_cond env (depth - 1))
    | 3 -> A.Un (A.LNot, gen_cond env (depth - 1))
    | _ -> gen_cond env 0

let rec gen_stmts env budget ~loop : A.stmt list =
  if budget <= 0 then []
  else
    let s, cost = gen_stmt env budget ~loop in
    s :: gen_stmts env (budget - cost) ~loop

and gen_stmt env budget ~loop =
  let choice = rint env 13 in
  match choice with
  | 0 | 1 when env.depth < max_depth && budget > 4 ->
      (* if/else; inner declarations go out of scope afterwards *)
      env.depth <- env.depth + 1;
      let saved = env.vars in
      let c = gen_cond env (1 + rint env 2) in
      let t = gen_stmts env (budget / 3) ~loop in
      env.vars <- saved;
      let e = if rbool env then gen_stmts env (budget / 3) ~loop else [] in
      env.vars <- saved;
      env.depth <- env.depth - 1;
      (A.If (c, t, e), 3 + List.length t + List.length e)
  | 2 when env.depth < max_depth && budget > 6 ->
      (* bounded for loop wrapped so the induction variable stays local *)
      env.depth <- env.depth + 1;
      let saved = env.vars in
      let iv = fresh_name env "i" in
      env.vars <- iv :: env.vars;
      env.protected <- iv :: env.protected;
      let bound = 2 + rint env 9 in
      let body = gen_stmts env (budget / 3) ~loop:In_for in
      env.vars <- saved;
      env.protected <-
        List.filter (fun v -> not (String.equal v iv)) env.protected;
      env.depth <- env.depth - 1;
      ( A.If
          ( A.Int 1L,
            [
              A.Decl (A.Tint, iv, Some (A.Int 0L));
              A.For
                ( Some (A.Assign (iv, A.Int 0L)),
                  Some (A.Bin (A.Lt, A.Var iv, A.Int (Int64.of_int bound))),
                  Some (A.Assign (iv, A.Bin (A.Add, A.Var iv, A.Int 1L))),
                  body );
            ],
            [] ),
        4 + List.length body )
  | 3 when env.depth < max_depth && budget > 6 ->
      (* bounded while loop: a protected counter is conjoined into the
         condition and incremented as the last body statement, so the
         loop terminates no matter what the generated condition does.
         [continue] is forbidden inside (it would skip the increment). *)
      env.depth <- env.depth + 1;
      let saved = env.vars in
      let iv = fresh_name env "w" in
      env.vars <- iv :: env.vars;
      env.protected <- iv :: env.protected;
      let bound = 2 + rint env 9 in
      let body = gen_stmts env (budget / 3) ~loop:In_while in
      env.vars <- saved;
      env.protected <-
        List.filter (fun v -> not (String.equal v iv)) env.protected;
      env.depth <- env.depth - 1;
      let cond =
        A.Bin
          ( A.LAnd,
            A.Bin (A.Lt, A.Var iv, A.Int (Int64.of_int bound)),
            if rbool env then gen_cond env 1 else A.Int 1L )
      in
      ( A.If
          ( A.Int 1L,
            [
              A.Decl (A.Tint, iv, Some (A.Int 0L));
              A.While
                (cond, body @ [ A.Assign (iv, A.Bin (A.Add, A.Var iv, A.Int 1L)) ]);
            ],
            [] ),
        5 + List.length body )
  | 4 when budget > 2 ->
      let arr = pick env [ "A"; "B" ] in
      (A.Store (arr, masked_index env 1, gen_expr env 2), 2)
  | 5 ->
      let name = fresh_name env "v" in
      let s = A.Decl (A.Tint, name, Some (gen_expr env 2)) in
      env.vars <- name :: env.vars;
      (s, 1)
  | 6 | 7 | 8
    when List.exists (fun v -> not (List.mem v env.protected)) env.vars ->
      let assignable =
        List.filter (fun v -> not (List.mem v env.protected)) env.vars
      in
      (A.Assign (pick env assignable, gen_expr env 2), 1)
  | 9 when loop <> Top && rbool env ->
      (A.If (gen_cond env 1, [ A.Break ], []), 2)
  | 10 when loop = In_for && rbool env ->
      (A.If (gen_cond env 1, [ A.Continue ], []), 2)
  | _ ->
      let name = fresh_name env "v" in
      let s = A.Decl (A.Tint, name, Some (gen_expr env 1)) in
      env.vars <- name :: env.vars;
      (s, 1)

let gen_kernel env ~size =
  let body = gen_stmts env size ~loop:Top in
  let ret =
    A.Return
      (Some
         (match env.vars with
         | [] -> A.Int 0L
         | vs ->
             List.fold_left
               (fun acc v -> A.Bin (A.Add, acc, A.Var v))
               (A.Var (List.hd vs))
               (List.tl vs)))
  in
  {
    A.kname = "rand";
    params =
      [
        { A.pname = "x"; pty = A.Tint };
        { A.pname = "y"; pty = A.Tint };
        { A.pname = "A"; pty = A.Tptr A.I64 };
        { A.pname = "B"; pty = A.Tptr A.I64 };
      ];
    body = body @ [ ret ];
  }

let generate ~seed ~size =
  let env =
    {
      vars = [ "x"; "y" ];
      protected = [];
      depth = 0;
      fresh = 0;
      st = Random.State.make [| seed; 0x5eed |];
    }
  in
  gen_kernel env ~size

(* the deterministic size schedule used by soak/fuzz campaigns *)
let size_for ~min_size ~max_size i =
  let span = max 1 (max_size - min_size + 1) in
  min_size + (i mod span)

let default_args = [ 7L; -3L; Int64.of_int addr_a; Int64.of_int addr_b ]

let default_mem () =
  let mem = Edge_isa.Mem.create ~size:mem_size in
  for i = 0 to array_len - 1 do
    Edge_isa.Mem.store_int mem (addr_a + (8 * i)) (Int64.of_int ((i * 37) - 90));
    Edge_isa.Mem.store_int mem (addr_b + (8 * i)) (Int64.of_int (1000 - (i * 13)))
  done;
  mem
