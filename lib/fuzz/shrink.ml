(* Greedy structural shrinking for failing kernels.

   [minimize ~keep ast] repeatedly tries single-step reductions —
   dropping statements, replacing a control structure by one of its
   arms, simplifying subexpressions — and commits the first candidate
   for which [keep] still holds, until no reduction applies. [keep] is
   an arbitrary failure predicate, so the same machinery minimizes
   semantic mismatches, validator violations and compiler errors alike.
   For checker failures the campaign driver builds [keep] from the
   diagnostic's (pass, invariant) key ([Oracle.still_fails]'s
   [check_key]), so shrinking cannot drift from, say, an opt_merge
   branch violation to an unrelated codegen structure error — the
   minimal reproducer stays attributable to the pass that broke it.

   Candidates can be ill-typed (a reduction may drop a declaration whose
   uses survive); those are filtered out before [keep] is consulted. *)

module A = Edge_lang.Ast

let rec expr_reductions (e : A.expr) : A.expr list =
  match e with
  | A.Bin (op, a, b) ->
      [ a; b; A.Int 1L ]
      @ List.map (fun a' -> A.Bin (op, a', b)) (expr_reductions a)
      @ List.map (fun b' -> A.Bin (op, a, b')) (expr_reductions b)
  | A.Un (op, a) -> a :: List.map (fun a' -> A.Un (op, a')) (expr_reductions a)
  | A.Cond (c, a, b) ->
      [ a; b ]
      @ List.map (fun c' -> A.Cond (c', a, b)) (expr_reductions c)
      @ List.map (fun a' -> A.Cond (c, a', b)) (expr_reductions a)
      @ List.map (fun b' -> A.Cond (c, a, b')) (expr_reductions b)
  | A.Index (v, i) ->
      A.Int 3L :: List.map (fun i' -> A.Index (v, i')) (expr_reductions i)
  | A.Int v -> if v = 0L then [] else [ A.Int 0L ]
  | A.Var _ | A.Float _ -> [ A.Int 0L ]

let rec reductions (stmts : A.stmt list) : A.stmt list list =
  match stmts with
  | [] -> []
  | s :: tl ->
      [ tl ]
      @ (match s with
        | A.If (_, a, b) -> [ a @ tl; b @ tl ]
        | A.While (_, b) -> [ b @ tl ]
        | A.For (_, _, _, b) -> [ b @ tl ]
        | _ -> [])
      @ (match s with
        | A.If (c, a, b) ->
            List.map (fun a' -> A.If (c, a', b) :: tl) (reductions a)
            @ List.map (fun b' -> A.If (c, a, b') :: tl) (reductions b)
        | A.While (c, b) ->
            List.map (fun b' -> A.While (c, b') :: tl) (reductions b)
        | A.For (i, c, st, b) ->
            List.map (fun b' -> A.For (i, c, st, b') :: tl) (reductions b)
        | _ -> [])
      @ (match s with
        | A.Decl (t, n, Some e) ->
            List.map (fun e' -> A.Decl (t, n, Some e') :: tl) (expr_reductions e)
        | A.Assign (n, e) ->
            List.map (fun e' -> A.Assign (n, e') :: tl) (expr_reductions e)
        | A.Return (Some e) ->
            List.map (fun e' -> A.Return (Some e') :: tl) (expr_reductions e)
        | A.Store (n, i, v) ->
            List.map (fun i' -> A.Store (n, i', v) :: tl) (expr_reductions i)
            @ List.map (fun v' -> A.Store (n, i, v') :: tl) (expr_reductions v)
        | A.While (c, b) ->
            List.map (fun c' -> A.While (c', b) :: tl) (expr_reductions c)
        | A.If (c, a, b) ->
            List.map (fun c' -> A.If (c', a, b) :: tl) (expr_reductions c)
        | _ -> [])
      @ List.map (fun tl' -> s :: tl') (reductions tl)

let well_typed (k : A.kernel) =
  match Edge_lang.Typecheck.check_kernel k with Ok () -> true | Error _ -> false

let minimize ~(keep : A.kernel -> bool) (ast : A.kernel) : A.kernel =
  let cur = ref ast in
  let progress = ref true in
  while !progress do
    progress := false;
    try
      List.iter
        (fun body ->
          let cand = { !cur with A.body } in
          if well_typed cand && keep cand then begin
            cur := cand;
            progress := true;
            raise Exit
          end)
        (reductions (!cur).A.body)
    with Exit -> ()
  done;
  !cur
