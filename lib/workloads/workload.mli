(** Workload definitions.

    The paper evaluates on 28 EEMBC 2.0 benchmarks (Figure 7). EEMBC is
    licensed and unavailable, so each workload here is a synthetic kernel
    carrying the same name and the same computational character as the
    original (see DESIGN.md's substitution table): the same kind of inner
    loops, control-flow density, data types and memory behaviour. Every
    workload is deterministic and self-contained: [setup] builds the
    memory image and returns the kernel arguments. *)

type t = {
  name : string;
  description : string;  (** what the EEMBC original measures and how the
                             substitute mirrors it *)
  source : string;  (** kernel-language source text *)
  mem_size : int;
  setup : Edge_isa.Mem.t -> int64 list;
}

val parse : t -> (Edge_lang.Ast.kernel, string) result

val reference_run :
  ?fuel:int -> t -> (int64 option * Edge_isa.Mem.t, string) result
(** Run the kernel under the reference interpreter; returns the return
    value and final memory. [fuel] bounds interpreted statements
    (forwarded to {!Edge_lang.Interp.run}); exhausting it is a fault,
    so callers serving untrusted kernels (the job server) can bound a
    pathological run instead of hanging on it. *)
