type t = {
  name : string;
  description : string;
  source : string;
  mem_size : int;
  setup : Edge_isa.Mem.t -> int64 list;
}

let parse t =
  match Edge_lang.Parser.parse t.source with
  | Ok k -> Ok k
  | Error e -> Error (Printf.sprintf "%s: %s" t.name e)

let reference_run ?fuel t =
  match parse t with
  | Error e -> Error e
  | Ok k -> (
      let mem = Edge_isa.Mem.create ~size:t.mem_size in
      let args = t.setup mem in
      match Edge_lang.Interp.run ?fuel k ~args ~mem with
      | Ok o -> Ok (o.Edge_lang.Interp.return_value, mem)
      | Error e -> Error (Printf.sprintf "%s: %s" t.name e))
