(* A domain-safe memo table: the first caller of a key computes, every
   concurrent caller of the same key blocks until the value lands, and
   later callers hit the table.  Used for compile artifacts and
   reference-interpreter runs shared across the experiment sweep.

   The table is striped by key hash: each stripe has its own mutex,
   condition and hashtable, so concurrent hits on *different* keys
   never serialize on one global lock (the old single-mutex layout made
   the memo itself the bottleneck when every worker domain consulted it
   per job). Waiters of a pending computation block on their stripe's
   condition only; a completion broadcast wakes at most the waiters of
   that stripe. *)

type 'v state = Done of 'v | Failed of exn | Pending

type ('k, 'v) stripe = {
  mu : Mutex.t;
  ready : Condition.t;
  tbl : ('k, 'v state) Hashtbl.t;
}

type ('k, 'v) t = ('k, 'v) stripe array

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ?(size = 64) () =
  let stripes = pow2 16 1 in
  Array.init stripes (fun _ ->
      {
        mu = Mutex.create ();
        ready = Condition.create ();
        tbl = Hashtbl.create (max 1 (size / stripes));
      })

let stripe_of (t : ('k, 'v) t) key =
  t.(Hashtbl.hash key land (Array.length t - 1))

let get t key f =
  let s = stripe_of t key in
  Mutex.lock s.mu;
  let rec loop () =
    match Hashtbl.find_opt s.tbl key with
    | Some (Done v) ->
        Mutex.unlock s.mu;
        v
    | Some (Failed e) ->
        Mutex.unlock s.mu;
        raise e
    | Some Pending ->
        Condition.wait s.ready s.mu;
        loop ()
    | None ->
        Hashtbl.replace s.tbl key Pending;
        Mutex.unlock s.mu;
        let st = try Done (f ()) with e -> Failed e in
        Mutex.lock s.mu;
        Hashtbl.replace s.tbl key st;
        Condition.broadcast s.ready;
        Mutex.unlock s.mu;
        (match st with
        | Done v -> v
        | Failed e -> raise e
        | Pending -> assert false)
  in
  loop ()

let clear t =
  Array.iter
    (fun s ->
      Mutex.lock s.mu;
      (* never clear in-flight computations out from under their waiters *)
      let keep =
        Hashtbl.fold
          (fun k v acc ->
            match v with
            | Pending -> (k, v) :: acc
            | Done _ | Failed _ -> acc)
          s.tbl []
      in
      Hashtbl.reset s.tbl;
      List.iter (fun (k, v) -> Hashtbl.replace s.tbl k v) keep;
      Mutex.unlock s.mu)
    t
