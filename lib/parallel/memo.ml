(* A domain-safe memo table: the first caller of a key computes, every
   concurrent caller of the same key blocks until the value lands, and
   later callers hit the table.  Used for compile artifacts and
   reference-interpreter runs shared across the experiment sweep. *)

type 'v state = Done of 'v | Failed of exn | Pending

type ('k, 'v) t = {
  mu : Mutex.t;
  ready : Condition.t;
  tbl : ('k, 'v state) Hashtbl.t;
}

let create ?(size = 64) () =
  { mu = Mutex.create (); ready = Condition.create (); tbl = Hashtbl.create size }

let get t key f =
  Mutex.lock t.mu;
  let rec loop () =
    match Hashtbl.find_opt t.tbl key with
    | Some (Done v) ->
        Mutex.unlock t.mu;
        v
    | Some (Failed e) ->
        Mutex.unlock t.mu;
        raise e
    | Some Pending ->
        Condition.wait t.ready t.mu;
        loop ()
    | None ->
        Hashtbl.replace t.tbl key Pending;
        Mutex.unlock t.mu;
        let st = try Done (f ()) with e -> Failed e in
        Mutex.lock t.mu;
        Hashtbl.replace t.tbl key st;
        Condition.broadcast t.ready;
        Mutex.unlock t.mu;
        (match st with
        | Done v -> v
        | Failed e -> raise e
        | Pending -> assert false)
  in
  loop ()

let clear t =
  Mutex.lock t.mu;
  (* never clear in-flight computations out from under their waiters *)
  let keep =
    Hashtbl.fold
      (fun k v acc -> match v with Pending -> (k, v) :: acc | Done _ | Failed _ -> acc)
      t.tbl []
  in
  Hashtbl.reset t.tbl;
  List.iter (fun (k, v) -> Hashtbl.replace t.tbl k v) keep;
  Mutex.unlock t.mu
