(** A fixed-size OCaml 5 domain pool with a [Mutex]/[Condition] work
    queue, for fanning independent (workload x config) experiments
    across cores.

    A pool created with [~jobs:n] spawns [n - 1] worker domains; the
    calling domain helps drain the queue during [map], so at most [n]
    jobs run concurrently.  [~jobs:1] is a strict sequential fallback:
    [map] degenerates to [List.map] and no domain, lock or queue is
    involved — guaranteeing behaviour identical to the pre-parallel
    harness. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1] worker domains (so the
    pool plus the calling domain saturate the machine), never below
    1. *)

val create : ?jobs:int -> unit -> t
(** Spawns [jobs - 1] workers (default [default_jobs ()], clamped to at
    least 1). *)

val shutdown : t -> unit
(** Signals the workers to exit and joins them. Idempotent. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, then [shutdown] (also on exception). *)

val jobs : t -> int
(** The parallelism degree the pool was created with. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map: results are returned in input order
    regardless of completion order. If any job raises, the first
    exception in input order is re-raised (with its backtrace) after
    all jobs have settled. *)

val filter_map : t -> ('a -> 'b option) -> 'a list -> 'b list
(** [map] then drop [None]s, preserving input order. *)

val run : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: [with_pool ?jobs (fun t -> map t f xs)]. *)
