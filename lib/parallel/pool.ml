(* A fixed-size domain pool over per-worker deques with work stealing.

   Each worker domain owns a deque (mutex-guarded ring buffer): [map]
   distributes jobs round-robin across the deques and signals only the
   deque's owner — never a broadcast — so an idle pool costs nothing
   and a submission wakes exactly one domain. A worker drains its own
   deque from the back (LIFO, cache-warm), and when empty steals from
   the front of a sibling's deque, so imbalanced job durations level
   out without a central queue: the old single Mutex/Condition queue
   made every push and pop serialize on one lock and every push
   broadcast-wake every worker.

   The pool owns [jobs - 1] worker domains; the caller of [map] helps
   drain by stealing, so a pool created with [~jobs:n] keeps at most
   [n] experiments in flight.  [~jobs:1] is a strict sequential
   fallback that never touches a deque (and therefore behaves exactly
   like [List.map]). *)

type job = unit -> unit

(* ring-buffer deque; all operations run under the owning slot's mutex *)
type deque = {
  mutable buf : job option array;
  mutable head : int;
  mutable len : int;
}

let dq_create () = { buf = Array.make 16 None; head = 0; len = 0 }

let dq_grow d =
  let cap = Array.length d.buf in
  let buf' = Array.make (2 * cap) None in
  for i = 0 to d.len - 1 do
    buf'.(i) <- d.buf.((d.head + i) mod cap)
  done;
  d.buf <- buf';
  d.head <- 0

let dq_push_back d j =
  if d.len = Array.length d.buf then dq_grow d;
  d.buf.((d.head + d.len) mod Array.length d.buf) <- Some j;
  d.len <- d.len + 1

let dq_pop_back d =
  if d.len = 0 then None
  else begin
    let i = (d.head + d.len - 1) mod Array.length d.buf in
    let j = d.buf.(i) in
    d.buf.(i) <- None;
    d.len <- d.len - 1;
    j
  end

let dq_pop_front d =
  if d.len = 0 then None
  else begin
    let j = d.buf.(d.head) in
    d.buf.(d.head) <- None;
    d.head <- (d.head + 1) mod Array.length d.buf;
    d.len <- d.len - 1;
    j
  end

type slot = { smu : Mutex.t; scond : Condition.t; dq : deque }

type t = {
  jobs : int;
  slots : slot array;  (* one per worker domain; empty when jobs = 1 *)
  closing : bool Atomic.t;
  cursor : int Atomic.t;  (* round-robin submission cursor *)
  mutable workers : unit Domain.t list;
}

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let submit t job =
  let n = Array.length t.slots in
  let s = t.slots.(Atomic.fetch_and_add t.cursor 1 mod n) in
  Mutex.lock s.smu;
  dq_push_back s.dq job;
  Condition.signal s.scond;
  Mutex.unlock s.smu

(* scan siblings front-first, starting after [idx] so thieves spread out *)
let steal t idx =
  let n = Array.length t.slots in
  let rec go k =
    if k >= n then None
    else
      let s = t.slots.((idx + k) mod n) in
      Mutex.lock s.smu;
      let j = dq_pop_front s.dq in
      Mutex.unlock s.smu;
      match j with Some _ -> j | None -> go (k + 1)
  in
  go 1

(* the caller during [map] owns no deque: it steals from everyone *)
let steal_any t =
  let n = Array.length t.slots in
  let rec go k =
    if k >= n then None
    else
      let s = t.slots.(k) in
      Mutex.lock s.smu;
      let j = dq_pop_front s.dq in
      Mutex.unlock s.smu;
      match j with Some _ -> j | None -> go (k + 1)
  in
  go 0

let rec worker_loop t idx =
  let me = t.slots.(idx) in
  Mutex.lock me.smu;
  let j = dq_pop_back me.dq in
  Mutex.unlock me.smu;
  match j with
  | Some job ->
      (* jobs are wrapped by [map] and never raise *)
      job ();
      worker_loop t idx
  | None -> (
      match steal t idx with
      | Some job ->
          job ();
          worker_loop t idx
      | None ->
          if not (Atomic.get t.closing) then begin
            Mutex.lock me.smu;
            while d_empty me && not (Atomic.get t.closing) do
              Condition.wait me.scond me.smu
            done;
            let j = dq_pop_back me.dq in
            Mutex.unlock me.smu;
            (match j with Some job -> job () | None -> ());
            worker_loop t idx
          end)

and d_empty me = me.dq.len = 0

let create ?jobs () =
  let jobs = max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  let t =
    {
      jobs;
      slots =
        Array.init (jobs - 1) (fun _ ->
            { smu = Mutex.create (); scond = Condition.create (); dq = dq_create () });
      closing = Atomic.make false;
      cursor = Atomic.make 0;
      workers = [];
    }
  in
  t.workers <-
    List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker_loop t i));
  t

let shutdown t =
  Atomic.set t.closing true;
  Array.iter
    (fun s ->
      Mutex.lock s.smu;
      Condition.broadcast s.scond;
      Mutex.unlock s.smu)
    t.slots;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let jobs t = t.jobs

let map t f xs =
  if t.jobs <= 1 then List.map f xs
  else
    match xs with
    | [] -> []
    | xs ->
        let arr = Array.of_list xs in
        let n = Array.length arr in
        let out = Array.make n None in
        let dmu = Mutex.create () in
        let all_done = Condition.create () in
        let remaining = ref n in
        let run i () =
          let r =
            try Ok (f arr.(i))
            with e -> Error (e, Printexc.get_raw_backtrace ())
          in
          out.(i) <- Some r;
          Mutex.lock dmu;
          decr remaining;
          if !remaining = 0 then Condition.broadcast all_done;
          Mutex.unlock dmu
        in
        for i = 0 to n - 1 do
          submit t (run i)
        done;
        (* help drain: the caller is one of the [jobs] lanes, stealing
           until every job of this map has settled *)
        let rec help () =
          Mutex.lock dmu;
          let finished = !remaining = 0 in
          Mutex.unlock dmu;
          if not finished then
            match steal_any t with
            | Some job ->
                job ();
                help ()
            | None ->
                Mutex.lock dmu;
                if !remaining > 0 then Condition.wait all_done dmu;
                Mutex.unlock dmu;
                help ()
        in
        help ();
        (* deterministic order: results come back indexed by input
           position; the first failure (in input order) re-raises *)
        Array.to_list out
        |> List.map (function
             | Some (Ok v) -> v
             | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
             | None -> assert false)

let filter_map t f xs = map t f xs |> List.filter_map Fun.id

let run ?jobs f xs = with_pool ?jobs (fun t -> map t f xs)
