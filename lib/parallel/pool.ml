(* A fixed-size domain pool over a Mutex/Condition work queue.

   The pool owns [jobs - 1] worker domains; the caller of [map] helps
   drain the queue, so a pool created with [~jobs:n] keeps at most [n]
   experiments in flight.  [~jobs:1] is a strict sequential fallback
   that never touches the queue (and therefore behaves exactly like
   [List.map]). *)

type t = {
  jobs : int;
  mu : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closing : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let rec worker_loop t =
  Mutex.lock t.mu;
  let rec take () =
    if t.closing then begin
      Mutex.unlock t.mu;
      None
    end
    else
      match Queue.take_opt t.queue with
      | Some job ->
          Mutex.unlock t.mu;
          Some job
      | None ->
          Condition.wait t.nonempty t.mu;
          take ()
  in
  match take () with
  | None -> ()
  | Some job ->
      (* jobs are wrapped by [map] and never raise *)
      job ();
      worker_loop t

let create ?jobs () =
  let jobs = max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  let t =
    {
      jobs;
      mu = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      closing = false;
      workers = [];
    }
  in
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mu;
  t.closing <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mu;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let jobs t = t.jobs

let map t f xs =
  if t.jobs <= 1 then List.map f xs
  else
    match xs with
    | [] -> []
    | xs ->
        let arr = Array.of_list xs in
        let n = Array.length arr in
        let out = Array.make n None in
        let remaining = ref n in
        let all_done = Condition.create () in
        let run i =
          let r =
            try Ok (f arr.(i))
            with e -> Error (e, Printexc.get_raw_backtrace ())
          in
          Mutex.lock t.mu;
          out.(i) <- Some r;
          decr remaining;
          if !remaining = 0 then Condition.broadcast all_done;
          Mutex.unlock t.mu
        in
        Mutex.lock t.mu;
        for i = 0 to n - 1 do
          Queue.add (fun () -> run i) t.queue
        done;
        Condition.broadcast t.nonempty;
        Mutex.unlock t.mu;
        (* help drain: the caller is one of the [jobs] lanes *)
        let rec help () =
          Mutex.lock t.mu;
          match Queue.take_opt t.queue with
          | Some job ->
              Mutex.unlock t.mu;
              job ();
              help ()
          | None -> Mutex.unlock t.mu
        in
        help ();
        Mutex.lock t.mu;
        while !remaining > 0 do
          Condition.wait all_done t.mu
        done;
        Mutex.unlock t.mu;
        (* deterministic order: results come back indexed by input
           position; the first failure (in input order) re-raises *)
        Array.to_list out
        |> List.map (function
             | Some (Ok v) -> v
             | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
             | None -> assert false)

let filter_map t f xs = map t f xs |> List.filter_map Fun.id

let run ?jobs f xs = with_pool ?jobs (fun t -> map t f xs)
