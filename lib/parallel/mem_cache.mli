(** Sharded in-memory result cache.

    Sits in front of {!Disk_cache} on the serving hot path: a warm hit
    costs one stripe lock and one hashtable probe — no filesystem
    access, no global mutex, no marshalling. Keys are strings (the
    caller's digest convention, same as {!Disk_cache}); values are kept
    as ordinary OCaml values, so hits return the exact value stored.

    The table is striped: a key hashes to one of [stripes] independent
    (mutex, hashtable) pairs, so concurrent readers and writers of
    different keys never contend. With [max_entries] set, each stripe
    holds at most [max_entries / stripes] entries and evicts its
    least-recently-used entry on overflow (per-stripe clock, O(stripe)
    scan — stripes are small by construction).

    All counters are [Atomic] and safe to read from any domain. *)

type 'v t

val create : ?stripes:int -> ?max_entries:int -> unit -> 'v t
(** [stripes] (default 64, rounded up to a power of two) independent
    lock stripes; [max_entries] (default 4096, [0] = unbounded) total
    entry cap, split evenly across stripes. *)

val find : 'v t -> key:string -> 'v option
(** A hit refreshes the entry's LRU clock. *)

val store : 'v t -> key:string -> 'v -> unit
(** Insert or replace, evicting the stripe's LRU entry if the stripe
    is at capacity. *)

val remove : 'v t -> key:string -> unit

val hits : 'v t -> int
val misses : 'v t -> int
val stores : 'v t -> int
val evictions : 'v t -> int

val entry_count : 'v t -> int
(** Entries currently held, summed across stripes. *)

val stripes : 'v t -> int

val clear : 'v t -> unit

val publish : 'v t -> Edge_obs.Metrics.t -> unit
(** Snapshot the counters into a metrics registry as
    [cache.mem.hits] / [cache.mem.misses] / [cache.mem.stores] /
    [cache.mem.evictions] / [cache.mem.entries], plus a
    [cache.mem.stripe.entries] histogram (one sample per non-empty
    stripe). Additive: call on a fresh registry for a snapshot. *)
