(* Crash-safe persistent key/value store: Marshal payloads behind a
   digest, written via temp-file + rename. See the .mli for the
   contract. *)

type t = {
  dir : string;
  hits : int Atomic.t;
  misses : int Atomic.t;
  errors : int Atomic.t;
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()
    (* lost a creation race: fine *)
  end

let create ~dir =
  mkdir_p dir;
  if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": not a directory"));
  { dir; hits = Atomic.make 0; misses = Atomic.make 0; errors = Atomic.make 0 }

let dir t = t.dir

let path_of_key t ~key =
  Filename.concat t.dir (Digest.to_hex (Digest.string key) ^ ".bin")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* entry layout: 16 raw digest bytes over the marshalled payload,
   then the payload itself *)

let find t ~key =
  let path = path_of_key t ~key in
  match read_file path with
  | exception Sys_error _ ->
      Atomic.incr t.misses;
      None
  | raw -> (
      let ok =
        String.length raw >= 16
        &&
        let payload = String.sub raw 16 (String.length raw - 16) in
        String.equal (String.sub raw 0 16) (Digest.string payload)
      in
      if not ok then begin
        Atomic.incr t.errors;
        Atomic.incr t.misses;
        None
      end
      else
        match Marshal.from_string raw 16 with
        | v ->
            Atomic.incr t.hits;
            Some v
        | exception _ ->
            Atomic.incr t.errors;
            Atomic.incr t.misses;
            None)

let tmp_counter = Atomic.make 0

let store t ~key v =
  let payload = Marshal.to_string v [] in
  let path = path_of_key t ~key in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (Digest.string payload);
        output_string oc payload);
    Sys.rename tmp path
  with
  | () -> ()
  | exception Sys_error _ ->
      (if Sys.file_exists tmp then try Sys.remove tmp with Sys_error _ -> ());
      Atomic.incr t.errors

let remove t ~key =
  let path = path_of_key t ~key in
  try Sys.remove path with Sys_error _ -> ()

let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
let errors t = Atomic.get t.errors
