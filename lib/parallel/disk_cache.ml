(* Crash-safe persistent key/value store: Marshal payloads behind a
   digest, written via temp-file + rename, sharded across 256 fan-out
   directories with an optional size cap enforced by mtime-ordered
   eviction. See the .mli for the contract. *)

type t = {
  dir : string;
  max_bytes : int option;
  hits : int Atomic.t;
  misses : int Atomic.t;
  errors : int Atomic.t;
  evictions : int Atomic.t;
  stores : int Atomic.t;
  tmp_swept : int;
  (* approximate bytes held in entries; corrected from a real scan every
     time the eviction path runs *)
  total : int Atomic.t;
  (* one evictor at a time per handle: eviction is correct without it
     (unlink is idempotent) but serializing avoids double-deleting fresh
     entries when two writers overflow the cap simultaneously *)
  evict_mu : Mutex.t;
  (* writeback thread state; [writer = None] means every store_async
     degrades to a synchronous store *)
  wmu : Mutex.t;
  wcond : Condition.t;  (* signalled on push: wakes the writer *)
  wdone : Condition.t;  (* broadcast on completion: wakes [drain] *)
  wq : (unit -> unit) Queue.t;
  mutable writer : Thread.t option;
  mutable wstop : bool;
  mutable w_active : bool;
  async_fallbacks : int Atomic.t;
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()
    (* lost a creation race: fine *)
  end

(* entries are named <digest>.bin; in-flight writes are
   <digest>.bin.tmp.<pid>.<n> *)
let is_entry name = Filename.check_suffix name ".bin"

let is_tmp name =
  (* any temp file of the store path convention, whatever its suffix *)
  let rec find i =
    i + 5 <= String.length name
    && (String.sub name i 5 = ".tmp." || find (i + 1))
  in
  find 0

let shard_names =
  lazy (Array.init 256 (fun i -> Printf.sprintf "%02x" i))

(* every (path, size, mtime) currently on disk, shard subdirectories
   and legacy flat entries alike; unreadable files are skipped (a
   concurrent evictor or writer got there first) *)
let scan_entries dir =
  let acc = ref [] in
  let file_of d name =
    let path = Filename.concat d name in
    match Unix.stat path with
    | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
        acc := (path, st_size, st_mtime) :: !acc
    | _ -> ()
    | exception Unix.Unix_error _ -> ()
  in
  let dir_of d =
    match Sys.readdir d with
    | names -> Array.iter (fun n -> if is_entry n then file_of d n) names
    | exception Sys_error _ -> ()
  in
  dir_of dir;
  Array.iter
    (fun shard -> dir_of (Filename.concat dir shard))
    (Lazy.force shard_names);
  !acc

(* remove abandoned temp files (a process that died between write and
   rename leaves one behind); only files older than [max_age_s] go, so
   a concurrent writer's in-flight temp survives *)
let sweep_tmp ~max_age_s dir =
  let now = Unix.gettimeofday () in
  let swept = ref 0 in
  let sweep_dir d =
    match Sys.readdir d with
    | exception Sys_error _ -> ()
    | names ->
        Array.iter
          (fun name ->
            if is_tmp name then
              let path = Filename.concat d name in
              match Unix.stat path with
              | { Unix.st_kind = Unix.S_REG; st_mtime; _ }
                when now -. st_mtime > max_age_s -> (
                  match Sys.remove path with
                  | () -> incr swept
                  | exception Sys_error _ -> ())
              | _ -> ()
              | exception Unix.Unix_error _ -> ())
          names
  in
  sweep_dir dir;
  Array.iter
    (fun shard -> sweep_dir (Filename.concat dir shard))
    (Lazy.force shard_names);
  !swept

(* the writeback thread: drains queued store closures until [wstop]
   and the queue is empty; [w_active] covers the window between pop
   and completion so [drain] cannot return with a write in flight *)
let writer_loop t =
  let rec loop () =
    Mutex.lock t.wmu;
    while Queue.is_empty t.wq && not t.wstop do
      Condition.wait t.wcond t.wmu
    done;
    if Queue.is_empty t.wq then begin
      Mutex.unlock t.wmu;
      () (* wstop with an empty queue: exit *)
    end
    else begin
      let job = Queue.pop t.wq in
      t.w_active <- true;
      Mutex.unlock t.wmu;
      (try job () with _ -> ());
      Mutex.lock t.wmu;
      t.w_active <- false;
      Condition.broadcast t.wdone;
      Mutex.unlock t.wmu;
      loop ()
    end
  in
  loop ()

let create ?max_bytes ?(tmp_max_age_s = 600.) ?(writeback = false) ~dir () =
  mkdir_p dir;
  if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": not a directory"));
  let tmp_swept = sweep_tmp ~max_age_s:tmp_max_age_s dir in
  let total =
    List.fold_left (fun a (_, s, _) -> a + s) 0 (scan_entries dir)
  in
  let t =
    {
      dir;
      max_bytes;
      hits = Atomic.make 0;
      misses = Atomic.make 0;
      errors = Atomic.make 0;
      evictions = Atomic.make 0;
      stores = Atomic.make 0;
      tmp_swept;
      total = Atomic.make total;
      evict_mu = Mutex.create ();
      wmu = Mutex.create ();
      wcond = Condition.create ();
      wdone = Condition.create ();
      wq = Queue.create ();
      writer = None;
      wstop = false;
      w_active = false;
      async_fallbacks = Atomic.make 0;
    }
  in
  if writeback then t.writer <- Some (Thread.create writer_loop t);
  t

let dir t = t.dir

let path_of_key t ~key =
  let digest = Digest.to_hex (Digest.string key) in
  Filename.concat
    (Filename.concat t.dir (String.sub digest 0 2))
    (digest ^ ".bin")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* entry layout: 16 raw digest bytes over the marshalled payload,
   then the payload itself *)

let find t ~key =
  let path = path_of_key t ~key in
  match read_file path with
  | exception Sys_error _ ->
      Atomic.incr t.misses;
      None
  | raw -> (
      let ok =
        String.length raw >= 16
        &&
        let payload = String.sub raw 16 (String.length raw - 16) in
        String.equal (String.sub raw 0 16) (Digest.string payload)
      in
      if not ok then begin
        Atomic.incr t.errors;
        Atomic.incr t.misses;
        None
      end
      else
        match Marshal.from_string raw 16 with
        | v ->
            Atomic.incr t.hits;
            (* LRU-ish: a hit refreshes the entry's mtime so eviction
               prefers entries nobody reads (best-effort: a concurrent
               eviction may have unlinked the file already) *)
            (try Unix.utimes path 0. 0. with Unix.Unix_error _ -> ());
            Some v
        | exception _ ->
            Atomic.incr t.errors;
            Atomic.incr t.misses;
            None)

(* Evict mtime-ascending until the total fits the cap again, never
   touching [keep] (the entry whose store triggered us) — so the
   invariant is "never above cap by more than the newest entry".
   Deletion is a bare unlink: a reader that already opened the file
   keeps its data (POSIX), a reader that has not gets a clean miss, and
   a crash mid-eviction just leaves the cache slightly over cap for the
   next store to finish the job. *)
let evict t ~cap ~keep =
  Mutex.lock t.evict_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.evict_mu)
    (fun () ->
      let entries =
        scan_entries t.dir
        |> List.sort (fun (pa, _, ma) (pb, _, mb) ->
               match Float.compare ma mb with
               | 0 -> String.compare pa pb
               | c -> c)
      in
      let total = List.fold_left (fun a (_, s, _) -> a + s) 0 entries in
      let remaining =
        List.fold_left
          (fun total (path, size, _) ->
            if total <= cap || String.equal path keep then total
            else begin
              (match Sys.remove path with
              | () -> Atomic.incr t.evictions
              | exception Sys_error _ -> ());
              total - size
            end)
          total entries
      in
      Atomic.set t.total remaining)

let tmp_counter = Atomic.make 0

let store t ~key v =
  let payload = Marshal.to_string v [] in
  let path = path_of_key t ~key in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  match
    mkdir_p (Filename.dirname path);
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (Digest.string payload);
        output_string oc payload);
    let old_size =
      match Unix.stat path with
      | { Unix.st_size; _ } -> st_size
      | exception Unix.Unix_error _ -> 0
    in
    Sys.rename tmp path;
    (old_size, String.length payload + 16)
  with
  | old_size, new_size ->
      Atomic.incr t.stores;
      let (_ : int) = Atomic.fetch_and_add t.total (new_size - old_size) in
      (match t.max_bytes with
      | Some cap when Atomic.get t.total > cap -> evict t ~cap ~keep:path
      | Some _ | None -> ())
  | exception Sys_error _ ->
      (if Sys.file_exists tmp then try Sys.remove tmp with Sys_error _ -> ());
      Atomic.incr t.errors

let async_queue_cap = 256

let store_async t ~key v =
  match t.writer with
  | None -> store t ~key v
  | Some _ ->
      Mutex.lock t.wmu;
      if Queue.length t.wq >= async_queue_cap then begin
        (* bounded queue: overflow degrades to the caller paying for the
           write rather than buffering unboundedly *)
        Mutex.unlock t.wmu;
        Atomic.incr t.async_fallbacks;
        store t ~key v
      end
      else begin
        Queue.push (fun () -> store t ~key v) t.wq;
        Condition.signal t.wcond;
        Mutex.unlock t.wmu
      end

let drain t =
  match t.writer with
  | None -> ()
  | Some _ ->
      Mutex.lock t.wmu;
      while not (Queue.is_empty t.wq) || t.w_active do
        Condition.wait t.wdone t.wmu
      done;
      Mutex.unlock t.wmu

let remove t ~key =
  let path = path_of_key t ~key in
  match Unix.stat path with
  | { Unix.st_size; _ } -> (
      try
        Sys.remove path;
        let (_ : int) = Atomic.fetch_and_add t.total (-st_size) in
        ()
      with Sys_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
let errors t = Atomic.get t.errors
let evictions t = Atomic.get t.evictions
let stores t = Atomic.get t.stores
let async_fallbacks t = Atomic.get t.async_fallbacks
let tmp_swept t = t.tmp_swept
let max_bytes t = t.max_bytes

let disk_usage t =
  List.fold_left (fun a (_, s, _) -> a + s) 0 (scan_entries t.dir)

let entry_count t = List.length (scan_entries t.dir)

let publish t (m : Edge_obs.Metrics.t) =
  let module M = Edge_obs.Metrics in
  M.incr ~by:(hits t) m "cache.hits";
  M.incr ~by:(misses t) m "cache.misses";
  M.incr ~by:(errors t) m "cache.errors";
  M.incr ~by:(evictions t) m "cache.evictions";
  M.incr ~by:(stores t) m "cache.stores";
  M.incr ~by:(tmp_swept t) m "cache.tmp_swept";
  M.incr ~by:(async_fallbacks t) m "cache.async_fallbacks";
  M.incr ~by:(Atomic.get t.total) m "cache.bytes";
  (* shard occupancy, one histogram sample per non-empty shard: a
     healthy cache spreads entries evenly across the 256 directories *)
  Array.iter
    (fun shard ->
      let d = Filename.concat t.dir shard in
      match Sys.readdir d with
      | exception Sys_error _ -> ()
      | names ->
          let entries =
            Array.fold_left
              (fun a n -> if is_entry n then a + 1 else a)
              0 names
          in
          if entries > 0 then begin
            M.incr ~by:entries m "cache.shard.occupied_entries";
            M.observe m "cache.shard.entries" entries
          end)
    (Lazy.force shard_names)
