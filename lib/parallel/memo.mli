(** Domain-safe memoization with single-flight semantics: concurrent
    [get]s of the same key run the computation once and share the
    result (or the exception). *)

type ('k, 'v) t

val create : ?size:int -> unit -> ('k, 'v) t

val get : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [get t k f] returns the cached value for [k], computing it with [f]
    on first use. If [f] raised, the exception is cached and re-raised
    for every subsequent caller. *)

val clear : ('k, 'v) t -> unit
(** Drops settled entries (in-flight computations are kept so waiters
    are never orphaned). *)
