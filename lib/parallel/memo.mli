(** Domain-safe memoization with single-flight semantics: concurrent
    [get]s of the same key run the computation once and share the
    result (or the exception).

    The table is striped by key hash — each stripe owns its mutex,
    condition and hashtable — so hits on different keys proceed in
    parallel and a completion only wakes the waiters of its own
    stripe. *)

type ('k, 'v) t

val create : ?size:int -> unit -> ('k, 'v) t

val get : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [get t k f] returns the cached value for [k], computing it with [f]
    on first use. If [f] raised, the exception is cached and re-raised
    for every subsequent caller. *)

val clear : ('k, 'v) t -> unit
(** Drops settled entries (in-flight computations are kept so waiters
    are never orphaned). *)
