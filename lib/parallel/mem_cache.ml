(* Striped in-memory LRU cache. See the .mli for the contract. *)

type 'v entry = { value : 'v; mutable tick : int }

type 'v stripe = {
  mu : Mutex.t;
  tbl : (string, 'v entry) Hashtbl.t;
  mutable clock : int;  (* stripe-local access counter *)
}

type 'v t = {
  stripes_arr : 'v stripe array;
  cap_per_stripe : int;  (* 0 = unbounded *)
  hits : int Atomic.t;
  misses : int Atomic.t;
  stores : int Atomic.t;
  evictions : int Atomic.t;
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ?(stripes = 64) ?(max_entries = 4096) () =
  let n = pow2 (max 1 stripes) 1 in
  let cap_per_stripe =
    if max_entries <= 0 then 0 else max 1 (max_entries / n)
  in
  {
    stripes_arr =
      Array.init n (fun _ ->
          { mu = Mutex.create (); tbl = Hashtbl.create 16; clock = 0 });
    cap_per_stripe;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    stores = Atomic.make 0;
    evictions = Atomic.make 0;
  }

let stripe_of t key =
  t.stripes_arr.(Hashtbl.hash key land (Array.length t.stripes_arr - 1))

let find t ~key =
  let s = stripe_of t key in
  Mutex.lock s.mu;
  let r =
    match Hashtbl.find_opt s.tbl key with
    | Some e ->
        s.clock <- s.clock + 1;
        e.tick <- s.clock;
        Some e.value
    | None -> None
  in
  Mutex.unlock s.mu;
  (match r with
  | Some _ -> Atomic.incr t.hits
  | None -> Atomic.incr t.misses);
  r

(* the stripe is at most [cap_per_stripe] entries, so the LRU scan is
   O(cap/stripes) — tens of entries, not thousands *)
let evict_lru t s =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, best) when best <= e.tick -> ()
      | _ -> victim := Some (k, e.tick))
    s.tbl;
  match !victim with
  | Some (k, _) ->
      Hashtbl.remove s.tbl k;
      Atomic.incr t.evictions
  | None -> ()

let store t ~key v =
  let s = stripe_of t key in
  Mutex.lock s.mu;
  s.clock <- s.clock + 1;
  (match Hashtbl.find_opt s.tbl key with
  | Some _ -> Hashtbl.replace s.tbl key { value = v; tick = s.clock }
  | None ->
      if t.cap_per_stripe > 0 && Hashtbl.length s.tbl >= t.cap_per_stripe
      then evict_lru t s;
      Hashtbl.replace s.tbl key { value = v; tick = s.clock });
  Mutex.unlock s.mu;
  Atomic.incr t.stores

let remove t ~key =
  let s = stripe_of t key in
  Mutex.lock s.mu;
  Hashtbl.remove s.tbl key;
  Mutex.unlock s.mu

let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
let stores t = Atomic.get t.stores
let evictions t = Atomic.get t.evictions

let entry_count t =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.mu;
      let n = Hashtbl.length s.tbl in
      Mutex.unlock s.mu;
      acc + n)
    0 t.stripes_arr

let stripes t = Array.length t.stripes_arr

let clear t =
  Array.iter
    (fun s ->
      Mutex.lock s.mu;
      Hashtbl.reset s.tbl;
      Mutex.unlock s.mu)
    t.stripes_arr

let publish t (m : Edge_obs.Metrics.t) =
  let module M = Edge_obs.Metrics in
  M.incr ~by:(hits t) m "cache.mem.hits";
  M.incr ~by:(misses t) m "cache.mem.misses";
  M.incr ~by:(stores t) m "cache.mem.stores";
  M.incr ~by:(evictions t) m "cache.mem.evictions";
  M.incr ~by:(entry_count t) m "cache.mem.entries";
  Array.iter
    (fun s ->
      Mutex.lock s.mu;
      let n = Hashtbl.length s.tbl in
      Mutex.unlock s.mu;
      if n > 0 then M.observe m "cache.mem.stripe.entries" n)
    t.stripes_arr
