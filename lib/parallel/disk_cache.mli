(** Persistent on-disk result cache.

    Complements {!Memo} (which dies with the process): entries survive
    across runs, so repeated sweeps skip recompilation and
    re-simulation of unchanged (workload, config) pairs. Callers build
    keys from content digests (kernel source, config, simulator
    revision); the cache itself is a dumb, crash-safe key/value store.

    Entries are [Marshal]ed payloads prefixed with their digest,
    sharded across 256 fan-out directories by the first byte of the
    key digest (so no single directory grows unboundedly under a
    many-million-entry load). A truncated or corrupted file fails the
    digest check and reads as a miss (counted in [errors]), so a
    damaged cache degrades to recomputation, never a crash. Writes go
    through a unique temp file plus [Sys.rename], making concurrent
    writers (parallel sweep domains, the serve front door, or two
    processes sharing a cache dir) last-writer-wins safe.

    With [max_bytes] set, every store that pushes the cache over the
    cap triggers mtime-ordered ("LRU-ish": hits refresh mtimes)
    eviction down to the cap, never deleting the entry just written —
    so disk usage is bounded by [max_bytes] plus one entry. Eviction
    is a bare unlink and therefore safe against concurrent readers: a
    reader that won the [open] race keeps its bytes, one that lost
    gets a clean miss, never a torn read. *)

type t

val create :
  ?max_bytes:int ->
  ?tmp_max_age_s:float ->
  ?writeback:bool ->
  dir:string ->
  unit ->
  t
(** Opens (creating if needed, like [mkdir -p]) a cache rooted at
    [dir]. Raises [Sys_error] only if the directory cannot be created
    at all.

    [max_bytes] caps the total entry bytes on disk (default: no cap);
    see the eviction contract above. Opening also sweeps temp files
    abandoned by writers that died between write and rename: any
    [*.tmp.*] file older than [tmp_max_age_s] seconds (default 600) is
    removed, younger ones are left for their (possibly live) writer.

    [writeback] (default [false]) spawns a writeback thread on the
    calling thread's domain, enabling {!store_async}; create with
    [writeback:true] from a long-lived context (e.g. a server's main
    thread), because the thread lives until the process exits. *)

val dir : t -> string

val find : t -> key:string -> 'a option
(** Look up [key]; [None] on miss or on a corrupted entry. The result
    type must match what was stored — keys must therefore encode the
    payload's type/version (the caller-side digest convention). A hit
    refreshes the entry's mtime (best-effort) so hot entries survive
    eviction. *)

val store : t -> key:string -> 'a -> unit
(** Atomically persist a value for [key], replacing any previous
    entry, then evict down to [max_bytes] if the store overflowed the
    cap. I/O errors are swallowed (counted in [errors]): a read-only
    cache dir degrades to a no-op cache. *)

val store_async : t -> key:string -> 'a -> unit
(** Like {!store}, but hands the marshal + write to the writeback
    thread so the calling (worker) domain never blocks on the
    filesystem. Degrades to a synchronous {!store} when the cache was
    opened without [writeback:true], or when the writeback queue is
    full (bounded at 256 entries; counted in [async_fallbacks]).
    Visibility: the entry lands on disk at some point after this call
    returns — call {!drain} before depending on it. *)

val drain : t -> unit
(** Block until every store queued via {!store_async} has been written
    to disk. No-op without a writeback thread. Call before process
    exit so accepted results are never lost. *)

val remove : t -> key:string -> unit

val path_of_key : t -> key:string -> string
(** Where [key]'s entry lives on disk — [dir/<hh>/<digest>.bin] with
    [hh] the first two hex digits of the key digest (exposed for tests
    that corrupt an entry deliberately). *)

val hits : t -> int

val misses : t -> int

val errors : t -> int
(** Corrupted entries encountered and store/read failures survived. *)

val evictions : t -> int
(** Entries deleted by the size-cap eviction path. *)

val stores : t -> int

val async_fallbacks : t -> int
(** {!store_async} calls that fell back to a synchronous store because
    the writeback queue was full. *)

val tmp_swept : t -> int
(** Stale temp files removed when this handle opened the directory. *)

val max_bytes : t -> int option

val disk_usage : t -> int
(** Ground truth from a directory scan: bytes currently held in
    entries (exclusive of in-flight temp files). *)

val entry_count : t -> int

val publish : t -> Edge_obs.Metrics.t -> unit
(** Snapshot the cache's counters into a metrics registry as
    [cache.hits]/[cache.misses]/[cache.errors]/[cache.evictions]/
    [cache.stores]/[cache.tmp_swept]/[cache.bytes], plus a
    [cache.shard.entries] histogram (one sample per non-empty shard
    directory). Additive: call on a fresh registry for a snapshot. *)
