(** Persistent on-disk result cache.

    Complements {!Memo} (which dies with the process): entries survive
    across runs, so repeated sweeps skip recompilation and
    re-simulation of unchanged (workload, config) pairs. Callers build
    keys from content digests (kernel source, config, simulator
    revision); the cache itself is a dumb, crash-safe key/value store.

    Entries are [Marshal]ed payloads prefixed with their digest; a
    truncated or corrupted file fails the digest check and reads as a
    miss (counted in [errors]), so a damaged cache degrades to
    recomputation, never a crash. Writes go through a unique temp file
    plus [Sys.rename], making concurrent writers (parallel sweep
    domains, or two processes sharing a cache dir) last-writer-wins
    safe. *)

type t

val create : dir:string -> t
(** Opens (creating if needed, like [mkdir -p]) a cache rooted at
    [dir]. Raises [Sys_error] only if the directory cannot be
    created at all. *)

val dir : t -> string

val find : t -> key:string -> 'a option
(** Look up [key]; [None] on miss or on a corrupted entry. The result
    type must match what was stored — keys must therefore encode the
    payload's type/version (the caller-side digest convention). *)

val store : t -> key:string -> 'a -> unit
(** Atomically persist a value for [key], replacing any previous
    entry. I/O errors are swallowed (counted in [errors]): a read-only
    cache dir degrades to a no-op cache. *)

val remove : t -> key:string -> unit

val path_of_key : t -> key:string -> string
(** Where [key]'s entry lives on disk (exposed for tests that corrupt
    an entry deliberately). *)

val hits : t -> int

val misses : t -> int

val errors : t -> int
(** Corrupted entries encountered and store/read failures survived. *)
