let frame_bytes = 1024
let frame_words = frame_bytes / 4
let magic = 0x45444745l
let header_words = 4 + 32 + 32 + 8

let ( let* ) = Result.bind

let encode_read (r : Block.read) =
  let n = List.length r.Block.rtargets in
  if n > 2 then Error "read with more than 2 targets"
  else
    let t k =
      match List.nth_opt r.Block.rtargets k with
      | Some tgt -> Target.encode tgt
      | None -> 0
    in
    Ok
      (Int32.of_int
         (r.Block.reg lor (n lsl 8) lor (t 0 lsl 12) lor (t 1 lsl 21)))

let decode_read ~rslot w =
  let w = Int32.to_int w land 0x3FFFFFFF in
  let reg = w land 0x7F in
  let n = (w lsr 8) land 0x3 in
  let dec v =
    match Target.decode v with
    | Some t -> Ok t
    | None -> Error (Printf.sprintf "bad read target %d" v)
  in
  let* rtargets =
    match n with
    | 0 -> Ok []
    | 1 ->
        let* a = dec ((w lsr 12) land 0x1FF) in
        Ok [ a ]
    | _ ->
        let* a = dec ((w lsr 12) land 0x1FF) in
        let* b = dec ((w lsr 21) land 0x1FF) in
        Ok [ a; b ]
  in
  Ok { Block.rslot; reg; rtargets }

let encode_block (b : Block.t) =
  let buf = Bytes.make frame_bytes '\000' in
  let setw i v = Bytes.set_int32_le buf (4 * i) v in
  let* body = Encode.encode_block_body b.Block.instrs in
  let nread = Array.length b.Block.reads in
  let nwrite = Array.length b.Block.writes in
  let nexit = Array.length b.Block.exits in
  if nread > 32 || nwrite > 32 || nexit > 8 then Error "resource overflow"
  else begin
    setw 0 magic;
    setw 1 (Int32.of_int (Array.length body));
    setw 2 (Int32.of_int (nread lor (nwrite lsl 8) lor (nexit lsl 16)));
    let mask =
      List.fold_left (fun acc l -> acc lor (1 lsl l)) 0 b.Block.store_lsids
    in
    setw 3 (Int32.of_int mask);
    let err = ref None in
    Array.iteri
      (fun i r ->
        match encode_read r with
        | Ok w -> setw (4 + i) w
        | Error e -> if !err = None then err := Some e)
      b.Block.reads;
    Array.iteri
      (fun i (w : Block.write) -> setw (36 + i) (Int32.of_int w.Block.wreg))
      b.Block.writes;
    (* string table: the block's own name first, then exit names *)
    let strings = Buffer.create 64 in
    let intern s =
      let off = Buffer.length strings in
      Buffer.add_string strings s;
      Buffer.add_char strings '\000';
      off
    in
    let self_off = intern b.Block.name in
    assert (self_off = 0);
    Array.iteri (fun i e -> setw (68 + i) (Int32.of_int (intern e))) b.Block.exits;
    let body_off = header_words in
    if Array.length body > frame_words - header_words then
      Error
        (Printf.sprintf "block %s: %d instruction words exceed the frame"
           b.Block.name (Array.length body))
    else begin
      Array.iteri (fun i w -> setw (body_off + i) w) body;
      let str_off = (body_off + Array.length body) * 4 in
      let s = Buffer.contents strings in
      if str_off + String.length s > frame_bytes then
        Error (Printf.sprintf "block %s: string table overflow" b.Block.name)
      else begin
        Bytes.blit_string s 0 buf str_off (String.length s);
        match !err with Some e -> Error e | None -> Ok buf
      end
    end
  end

let cstring bytes off =
  let rec len i =
    if off + i >= Bytes.length bytes || Bytes.get bytes (off + i) = '\000' then i
    else len (i + 1)
  in
  Bytes.sub_string bytes off (len 0)

let decode_block frame =
  let getw i = Bytes.get_int32_le frame (4 * i) in
  if getw 0 <> magic then Error "bad magic"
  else begin
    let nbody = Int32.to_int (getw 1) in
    let counts = Int32.to_int (getw 2) in
    let nread = counts land 0xFF in
    let nwrite = (counts lsr 8) land 0xFF in
    let nexit = (counts lsr 16) land 0xFF in
    let mask = Int32.to_int (getw 3) in
    let store_lsids =
      List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init 32 Fun.id)
    in
    let rec build_reads i acc =
      if i >= nread then Ok (Array.of_list (List.rev acc))
      else
        let* r = decode_read ~rslot:i (getw (4 + i)) in
        build_reads (i + 1) (r :: acc)
    in
    let* reads = build_reads 0 [] in
    let writes =
      Array.init nwrite (fun i ->
          { Block.wslot = i; wreg = Int32.to_int (getw (36 + i)) land 0x7F })
    in
    let body_off = header_words in
    let str_base = (body_off + nbody) * 4 in
    let name = cstring frame str_base in
    let exits =
      Array.init nexit (fun i ->
          cstring frame (str_base + Int32.to_int (getw (68 + i))))
    in
    let body_words = Array.init nbody (fun i -> getw (body_off + i)) in
    let* instrs = Encode.decode_block_body body_words in
    Ok { Block.name; instrs; reads; writes; store_lsids; exits }
  end

let encode_program (p : Program.t) =
  (* the entry block leads the image *)
  let blocks =
    match Program.find p p.Program.entry with
    | Some e ->
        e
        :: List.filter_map
             (fun (n, b) ->
               if String.equal n p.Program.entry then None else Some b)
             p.Program.blocks
    | None -> List.map snd p.Program.blocks
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | b :: tl ->
        let* frame = encode_block b in
        go (frame :: acc) tl
  in
  let* frames = go [] blocks in
  let image = Bytes.create (List.length frames * frame_bytes) in
  List.iteri
    (fun i f -> Bytes.blit f 0 image (i * frame_bytes) frame_bytes)
    frames;
  Ok image

let decode_program image =
  let n = Bytes.length image in
  if n = 0 || n mod frame_bytes <> 0 then Error "image size is not a frame multiple"
  else begin
    let rec go i acc =
      if i * frame_bytes >= n then Ok (List.rev acc)
      else
        let frame = Bytes.sub image (i * frame_bytes) frame_bytes in
        let* b = decode_block frame in
        go (i + 1) (b :: acc)
    in
    let* blocks = go 0 [] in
    match blocks with
    | [] -> Error "empty image"
    | entry :: _ -> Program.make ~entry:entry.Block.name blocks
  end

(* --- compact wire/cache images ---------------------------------------

   The fixed-frame image above is the I-cache's address layout; on the
   wire and in cache payloads most of each 1024-byte frame is trailing
   zeros.  The compact form strips them: per block we keep only the
   prefix up to the last non-zero byte, length-prefixed, and seal the
   whole thing with an MD5 trailer so a torn or corrupted image fails
   loudly instead of decoding to a different program. *)

let compact_magic = "EDGC"
let compact_version = 1

let trim_frame frame =
  let rec last i = if i < 0 || Bytes.get frame i <> '\000' then i else last (i - 1) in
  Bytes.sub_string frame 0 (last (frame_bytes - 1) + 1)

let encode_compact (p : Program.t) =
  let* image = encode_program p in
  let nblocks = Bytes.length image / frame_bytes in
  let buf = Buffer.create (Bytes.length image / 4) in
  Buffer.add_string buf compact_magic;
  Buffer.add_uint8 buf compact_version;
  Buffer.add_int32_le buf (Int32.of_int nblocks);
  for i = 0 to nblocks - 1 do
    let body = trim_frame (Bytes.sub image (i * frame_bytes) frame_bytes) in
    Buffer.add_int32_le buf (Int32.of_int (String.length body));
    Buffer.add_string buf body
  done;
  let payload = Buffer.contents buf in
  Ok (payload ^ Digest.string payload)

let decode_compact s =
  let n = String.length s in
  if n < 4 + 1 + 4 + 16 then Error "compact image: truncated"
  else if not (String.equal (String.sub s 0 4) compact_magic) then
    Error "compact image: bad magic"
  else if Char.code s.[4] <> compact_version then
    Error
      (Printf.sprintf "compact image: unsupported version %d" (Char.code s.[4]))
  else begin
    let payload = String.sub s 0 (n - 16) in
    if not (String.equal (String.sub s (n - 16) 16) (Digest.string payload))
    then Error "compact image: digest mismatch"
    else begin
      let nblocks = Int32.to_int (String.get_int32_le s 5) in
      let pos = ref 9 in
      let limit = n - 16 in
      let rec go i acc =
        if i >= nblocks then Ok (List.rev acc)
        else if !pos + 4 > limit then Error "compact image: truncated block table"
        else begin
          let len = Int32.to_int (String.get_int32_le s !pos) in
          pos := !pos + 4;
          if len < 0 || len > frame_bytes || !pos + len > limit then
            Error "compact image: bad block length"
          else begin
            let frame = Bytes.make frame_bytes '\000' in
            Bytes.blit_string s !pos frame 0 len;
            pos := !pos + len;
            let* b = decode_block frame in
            go (i + 1) (b :: acc)
          end
        end
      in
      let* blocks = go 0 [] in
      if !pos <> limit then Error "compact image: trailing bytes"
      else
        match blocks with
        | [] -> Error "compact image: empty"
        | entry :: _ -> Program.make ~entry:entry.Block.name blocks
    end
  end

let write_file path p =
  let* image = encode_program p in
  let oc = open_out_bin path in
  output_bytes oc image;
  close_out oc;
  Ok ()

let read_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      let n = in_channel_length ic in
      let image = Bytes.create n in
      really_input ic image 0 n;
      close_in ic;
      decode_program image
