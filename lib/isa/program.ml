type t = { entry : string; blocks : (string * Block.t) list }

let find t name = List.assoc_opt name t.blocks

let check_exits t =
  List.concat_map
    (fun (name, (b : Block.t)) ->
      Array.to_list b.Block.exits
      |> List.filter_map (fun e ->
             if String.equal e Block.halt_exit || find t e <> None then None
             else Some (Printf.sprintf "%s: exit to unknown block %s" name e)))
    t.blocks

let make ~entry blocks =
  let named = List.map (fun (b : Block.t) -> (b.Block.name, b)) blocks in
  let rec dup = function
    | [] -> None
    | (n, _) :: tl -> if List.mem_assoc n tl then Some n else dup tl
  in
  match dup named with
  | Some n -> Error (Printf.sprintf "duplicate block name %s" n)
  | None ->
      let t = { entry; blocks = named } in
      if find t entry = None then
        Error (Printf.sprintf "entry block %s not found" entry)
      else
        match check_exits t with
        | [] -> Ok t
        | e :: _ -> Error e

let validate t =
  let block_errs =
    List.concat_map
      (fun (name, b) ->
        match Block.validate b with
        | Ok () -> []
        | Error es -> List.map (fun e -> name ^ ": " ^ e) es)
      t.blocks
  in
  match block_errs @ check_exits t with [] -> Ok () | es -> Error es

(* Content address of a program: blocks are pure data (no closures), so
   a digest of the marshalled value identifies the program exactly.
   Used by the decode-once block-image cache and the persistent result
   cache to key derived artifacts. *)
let digest t = Digest.to_hex (Digest.string (Marshal.to_string t []))

let pp ppf t =
  Format.fprintf ppf "@[<v>program (entry %s)@," t.entry;
  List.iter (fun (_, b) -> Format.fprintf ppf "%a@," Block.pp b) t.blocks;
  Format.fprintf ppf "@]"
