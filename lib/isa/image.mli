(** Binary program images.

    TRIPS stores each block as a fixed 1024-byte frame in instruction
    memory: a header naming the block's register reads and writes, store
    mask and exits, followed by the instruction words (Section 3; the
    I-cache model in {!Edge_sim} charges fetches against this layout).
    This module serializes whole programs to that format and back.

    Frame layout (little-endian 32-bit words):

    {v
    word 0        magic 0x45444745 ("EDGE")
    word 1        instruction word count
    word 2        read count | write count << 8 | exit count << 16
    word 3        store LSID mask (bit i = LSID i declared)
    words 4..35   read slots: reg | ntargets << 8 | t0 << 12 | t1 << 21
    words 36..67  write slots: reg
    words 68..75  exit table: offsets into the string table
    words 76..    instruction words (Encode), then the string table
                  (block names for exits, NUL-separated)
    v}

    Every block occupies exactly [frame_bytes]; block i of the program
    sits at offset [i * frame_bytes], which is also the address layout
    the cycle simulator's I-cache uses. *)

val frame_bytes : int

val encode_program : Program.t -> (Bytes.t, string) result
val decode_program : Bytes.t -> (Program.t, string) result

val encode_compact : Program.t -> (string, string) result
(** Compact self-checking image for wire transport and cache payloads:
    ["EDGC"] magic, a version byte, a block count, then each frame
    with its trailing zeros stripped behind a length prefix, sealed by
    an MD5 trailer over everything before it. Typically 5-20x smaller
    than the fixed-frame image. The entry block leads, as in
    {!encode_program}. *)

val decode_compact : string -> (Program.t, string) result
(** Inverse of {!encode_compact}. Any truncation, bit flip, version
    skew or trailing garbage is rejected with a descriptive error —
    never a silently different program. *)

val write_file : string -> Program.t -> (unit, string) result
val read_file : string -> (Program.t, string) result
