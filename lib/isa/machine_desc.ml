type backend = Trips_grid | Inorder_edge

type hop_model = Manhattan of int | Uniform of int

type t = {
  backend : backend;
  rows : int;
  cols : int;
  slots_per_tile : int;
  hop_model : hop_model;
  issue_per_tile : int;
  window_size : int;
  predictor_history_bits : int;
  predictor_table_bits : int;
  fetch_cycles : int;
  predict_cycles : int;
  max_inflight : int;
  l1d_size : int;
  l1d_ways : int;
  l1d_latency : int;
  l1i_size : int;
  l1i_ways : int;
  l1i_latency : int;
  l2_size : int;
  l2_ways : int;
  l2_latency : int;
  mem_latency : int;
  line_bytes : int;
  early_termination : bool;
  aggressive_loads : bool;
  commit_stores_per_cycle : int;
  max_cycles : int;
}

let trips_grid =
  {
    backend = Trips_grid;
    rows = 4;
    cols = 4;
    slots_per_tile = 8;
    hop_model = Manhattan 1;
    issue_per_tile = 1;
    window_size = 16;
    predictor_history_bits = 4;
    predictor_table_bits = 12;
    fetch_cycles = 8;
    predict_cycles = 3;
    max_inflight = 8;
    l1d_size = 32 * 1024;
    l1d_ways = 2;
    l1d_latency = 2;
    l1i_size = 64 * 1024;
    l1i_ways = 2;
    l1i_latency = 1;
    l2_size = 1024 * 1024;
    l2_ways = 4;
    l2_latency = 20;
    mem_latency = 80;
    line_bytes = 64;
    early_termination = true;
    aggressive_loads = true;
    commit_stores_per_cycle = 2;
    max_cycles = 200_000_000;
  }

(* the area-efficient soft core: one centralized tile wide enough for a
   whole block, no operand network, one block in flight, a 16-entry
   in-order window *)
let inorder_edge =
  {
    trips_grid with
    backend = Inorder_edge;
    rows = 1;
    cols = 1;
    slots_per_tile = 128;
    hop_model = Uniform 0;
    max_inflight = 1;
  }

let default = trips_grid

let presets = [ ("trips_grid", trips_grid); ("inorder_edge", inorder_edge) ]

let name m =
  match List.find_opt (fun (_, p) -> p = m) presets with
  | Some (n, _) -> n
  | None -> "custom"

let backend_name = function
  | Trips_grid -> "trips_grid"
  | Inorder_edge -> "inorder_edge"

(* -- geometry ------------------------------------------------------ *)

let num_tiles m = m.rows * m.cols
let tile_row m t = t / m.cols
let tile_col m t = t mod m.cols

let hops m a b =
  match m.hop_model with
  | Manhattan per ->
      per
      * (abs (tile_row m a - tile_row m b) + abs (tile_col m a - tile_col m b))
  | Uniform c -> if a = b then 0 else c

let reg_access_hops m t =
  match m.hop_model with
  | Manhattan per -> per * (tile_row m t + 1)
  | Uniform c -> c

let mem_access_hops m t =
  match m.hop_model with
  | Manhattan per -> per * (tile_col m t + 1)
  | Uniform c -> c

let same_geometry a b =
  a.rows = b.rows && a.cols = b.cols && a.slots_per_tile = b.slots_per_tile
  && a.hop_model = b.hop_model

let validate m =
  let err fmt = Printf.ksprintf Result.error fmt in
  if m.rows < 1 || m.cols < 1 then err "grid %dx%d is empty" m.rows m.cols
  else if m.rows * m.cols > 1 lsl 10 then
    err "grid %dx%d has more than 1024 tiles" m.rows m.cols
  else if m.slots_per_tile < 1 then
    err "slots_per_tile %d < 1" m.slots_per_tile
  else if m.rows * m.cols * m.slots_per_tile < Block.max_instrs then
    err "%d RS slots cannot hold a maximal %d-instruction block"
      (m.rows * m.cols * m.slots_per_tile)
      Block.max_instrs
  else if (match m.hop_model with Manhattan k | Uniform k -> k < 0) then
    err "negative hop cost"
  else if m.issue_per_tile < 1 then err "issue_per_tile %d < 1" m.issue_per_tile
  else if m.window_size < 1 then err "window_size %d < 1" m.window_size
  else if m.predictor_history_bits < 0 || m.predictor_history_bits > 16 then
    err "predictor_history_bits %d outside 0..16" m.predictor_history_bits
  else if m.predictor_table_bits < 1 || m.predictor_table_bits > 24 then
    err "predictor_table_bits %d outside 1..24" m.predictor_table_bits
  else if m.fetch_cycles < 0 || m.predict_cycles < 0 then
    err "negative fetch/predict latency"
  else if m.max_inflight < 1 || m.max_inflight > 1 lsl 20 then
    err "max_inflight %d outside 1..2^20" m.max_inflight
  else if
    List.exists
      (fun v -> v < 1)
      [ m.l1d_size; m.l1d_ways; m.l1i_size; m.l1i_ways; m.l2_size; m.l2_ways ]
  then err "cache sizes and associativities must be positive"
  else if m.l1d_latency < 0 || m.l1i_latency < 0 || m.l2_latency < 0
          || m.mem_latency < 0
  then err "negative cache/memory latency"
  else if m.line_bytes < 4 || m.line_bytes land (m.line_bytes - 1) <> 0 then
    err "line_bytes %d is not a power of two >= 4" m.line_bytes
  else if m.commit_stores_per_cycle < 1 then
    err "commit_stores_per_cycle %d < 1" m.commit_stores_per_cycle
  else if m.max_cycles < 1 then err "max_cycles %d < 1" m.max_cycles
  else Ok ()

(* -- serialization -------------------------------------------------

   A fixed-order key=value line. [of_compact] also accepts preset names
   — bare ("inorder_edge") or with overrides folded on top
   ("inorder_edge;window=8"); a line starting with an override applies
   to [default] — so the wire protocol can name a machine without
   spelling out thirty fields. *)

let hop_to_string = function
  | Manhattan k -> Printf.sprintf "manhattan:%d" k
  | Uniform k -> Printf.sprintf "uniform:%d" k

let hop_of_string s =
  match String.split_on_char ':' s with
  | [ "manhattan"; k ] -> (
      match int_of_string_opt k with
      | Some k -> Ok (Manhattan k)
      | None -> Error ("bad hop cost " ^ s))
  | [ "uniform"; k ] -> (
      match int_of_string_opt k with
      | Some k -> Ok (Uniform k)
      | None -> Error ("bad hop cost " ^ s))
  | _ -> Error ("bad hop model " ^ s)

let to_compact m =
  String.concat ";"
    [
      "backend=" ^ backend_name m.backend;
      Printf.sprintf "rows=%d" m.rows;
      Printf.sprintf "cols=%d" m.cols;
      Printf.sprintf "slots=%d" m.slots_per_tile;
      "hop=" ^ hop_to_string m.hop_model;
      Printf.sprintf "issue=%d" m.issue_per_tile;
      Printf.sprintf "window=%d" m.window_size;
      Printf.sprintf "phist=%d" m.predictor_history_bits;
      Printf.sprintf "ptable=%d" m.predictor_table_bits;
      Printf.sprintf "fetch=%d" m.fetch_cycles;
      Printf.sprintf "predict=%d" m.predict_cycles;
      Printf.sprintf "inflight=%d" m.max_inflight;
      Printf.sprintf "l1d=%d:%d:%d" m.l1d_size m.l1d_ways m.l1d_latency;
      Printf.sprintf "l1i=%d:%d:%d" m.l1i_size m.l1i_ways m.l1i_latency;
      Printf.sprintf "l2=%d:%d:%d" m.l2_size m.l2_ways m.l2_latency;
      Printf.sprintf "memlat=%d" m.mem_latency;
      Printf.sprintf "line=%d" m.line_bytes;
      Printf.sprintf "early=%b" m.early_termination;
      Printf.sprintf "aggr=%b" m.aggressive_loads;
      Printf.sprintf "stcommit=%d" m.commit_stores_per_cycle;
      Printf.sprintf "maxcyc=%d" m.max_cycles;
    ]

let of_compact s =
  let ( let* ) = Result.bind in
  let named = ("default", default) :: presets in
  match List.assoc_opt s named with
  | Some m -> Ok m
  | None ->
      (* a leading bare preset name seeds the base the overrides fold
         over, so "inorder_edge;window=8" means that preset, adjusted *)
      let base, fields =
        match String.split_on_char ';' s with
        | first :: rest when List.mem_assoc first named ->
            (List.assoc first named, rest)
        | fields -> (default, fields)
      in
      let int_of k v =
        match int_of_string_opt v with
        | Some i -> Ok i
        | None -> Error (Printf.sprintf "bad integer %s for %s" v k)
      in
      let bool_of k v =
        match bool_of_string_opt v with
        | Some b -> Ok b
        | None -> Error (Printf.sprintf "bad boolean %s for %s" v k)
      in
      let cache_of k v =
        match String.split_on_char ':' v with
        | [ size; ways; lat ] ->
            let* size = int_of k size in
            let* ways = int_of k ways in
            let* lat = int_of k lat in
            Ok (size, ways, lat)
        | _ -> Error (Printf.sprintf "bad cache shape %s for %s" v k)
      in
      let* m =
        List.fold_left
          (fun acc field ->
            let* m = acc in
            match String.index_opt field '=' with
            | None -> Error (Printf.sprintf "bad field %S" field)
            | Some i -> (
                let k = String.sub field 0 i in
                let v =
                  String.sub field (i + 1) (String.length field - i - 1)
                in
                match k with
                | "backend" -> (
                    match v with
                    | "trips_grid" -> Ok { m with backend = Trips_grid }
                    | "inorder_edge" -> Ok { m with backend = Inorder_edge }
                    | _ -> Error ("unknown backend " ^ v))
                | "rows" ->
                    let* v = int_of k v in
                    Ok { m with rows = v }
                | "cols" ->
                    let* v = int_of k v in
                    Ok { m with cols = v }
                | "slots" ->
                    let* v = int_of k v in
                    Ok { m with slots_per_tile = v }
                | "hop" ->
                    let* h = hop_of_string v in
                    Ok { m with hop_model = h }
                | "issue" ->
                    let* v = int_of k v in
                    Ok { m with issue_per_tile = v }
                | "window" ->
                    let* v = int_of k v in
                    Ok { m with window_size = v }
                | "phist" ->
                    let* v = int_of k v in
                    Ok { m with predictor_history_bits = v }
                | "ptable" ->
                    let* v = int_of k v in
                    Ok { m with predictor_table_bits = v }
                | "fetch" ->
                    let* v = int_of k v in
                    Ok { m with fetch_cycles = v }
                | "predict" ->
                    let* v = int_of k v in
                    Ok { m with predict_cycles = v }
                | "inflight" ->
                    let* v = int_of k v in
                    Ok { m with max_inflight = v }
                | "l1d" ->
                    let* size, ways, lat = cache_of k v in
                    Ok { m with l1d_size = size; l1d_ways = ways; l1d_latency = lat }
                | "l1i" ->
                    let* size, ways, lat = cache_of k v in
                    Ok { m with l1i_size = size; l1i_ways = ways; l1i_latency = lat }
                | "l2" ->
                    let* size, ways, lat = cache_of k v in
                    Ok { m with l2_size = size; l2_ways = ways; l2_latency = lat }
                | "memlat" ->
                    let* v = int_of k v in
                    Ok { m with mem_latency = v }
                | "line" ->
                    let* v = int_of k v in
                    Ok { m with line_bytes = v }
                | "early" ->
                    let* v = bool_of k v in
                    Ok { m with early_termination = v }
                | "aggr" ->
                    let* v = bool_of k v in
                    Ok { m with aggressive_loads = v }
                | "stcommit" ->
                    let* v = int_of k v in
                    Ok { m with commit_stores_per_cycle = v }
                | "maxcyc" ->
                    let* v = int_of k v in
                    Ok { m with max_cycles = v }
                | _ -> Error ("unknown machine field " ^ k)))
          (Ok base) fields
      in
      let* () = validate m in
      Ok m
