(** Architectural memory: a flat little-endian byte store.

    Accesses outside the mapped range do not trap; they return/accept
    tokens with the exception bit set, which the microarchitecture
    propagates and raises only if the value reaches a committed block
    output on a correctly predicated path (Section 4.4). *)

type t

val create : size:int -> t
val size : t -> int
val copy : t -> t
val equal : t -> t -> bool
(** Byte-image equality; the store counter is not compared. *)

val store_count : t -> int
(** Number of architectural stores committed through {!store} since
    creation. Setup helpers ([store_int], [store_float], [blit_ints]) do
    not count: the counter measures dynamic stores the program performed,
    which every execution path (interpreter, functional, cycle) must
    agree on. *)

val load : t -> width:Opcode.width -> addr:int64 -> Token.t
(** Sub-word loads sign-extend. Out-of-range or misaligned addresses yield
    a token with the exception bit set. *)

val store : t -> width:Opcode.width -> addr:int64 -> int64 -> (unit, unit) result
(** [Error ()] for out-of-range or misaligned addresses (the store is
    dropped; the caller tags the block output as excepting). *)

val load_int : t -> int -> int64
(** 8-byte load for test harnesses; raises on out-of-range. *)

val store_int : t -> int -> int64 -> unit
val load_float : t -> int -> float
val store_float : t -> int -> float -> unit
val blit_ints : t -> int -> int64 list -> unit
val width_bytes : Opcode.width -> int
