(** First-class machine descriptions.

    Everything the compiler's scheduler and both cycle-level backends
    need to know about the microarchitecture lives here: which backend
    interprets the description, the execution-tile geometry, the
    operand-network hop model, reservation-station organization, issue
    width, predictor sizing, and the timing/cache parameters that were
    historically the whole of [Machine.t]. The compiler ([Dfp.Schedule])
    and the simulators ([Edge_sim]) share this single definition — the
    module lives in [Edge_isa] because the ISA layer is the one
    dependency both sides already have.

    The [trips_grid] preset reproduces the Section 6 tsim-proc substitute
    exactly: a 4×4 grid of tiles with 8 reservation-station slots each
    (128 instructions), register tiles along the top edge, data tiles
    along the left edge, one cycle per Manhattan hop, up to 8 blocks in
    flight. The [inorder_edge] preset models Gray & Smith's
    area-efficient EDGE soft core: a single centralized tile holding the
    whole block, no operand network, one block in flight, sequential
    single-issue execution from a small instruction window. *)

type backend =
  | Trips_grid  (** the tiled out-of-order dataflow core ([Cycle_sim]) *)
  | Inorder_edge  (** the scalar in-order core ([Inorder_sim]) *)

type hop_model =
  | Manhattan of int
      (** 2-D mesh routing at [k] cycles per hop; register file along
          the top edge, memory interface along the left edge *)
  | Uniform of int
      (** fixed [k]-cycle cost between distinct tiles and to the
          register/memory interfaces; [Uniform 0] models fully
          centralized structures *)

type t = {
  backend : backend;
  rows : int;  (** execution-tile grid height *)
  cols : int;  (** execution-tile grid width *)
  slots_per_tile : int;  (** reservation-station slots per tile *)
  hop_model : hop_model;
  issue_per_tile : int;
      (** instructions issued per tile per cycle (the in-order backend
          reads this as its total issue width) *)
  window_size : int;
      (** in-order backends: in-flight instruction window *)
  predictor_history_bits : int;
  predictor_table_bits : int;
  fetch_cycles : int;
  predict_cycles : int;
  max_inflight : int;  (** frames: 1 non-speculative + N-1 speculative *)
  l1d_size : int;
  l1d_ways : int;
  l1d_latency : int;
  l1i_size : int;
  l1i_ways : int;
  l1i_latency : int;
  l2_size : int;
  l2_ways : int;
  l2_latency : int;
  mem_latency : int;
  line_bytes : int;
  early_termination : bool;  (** Section 4.3; off = drain before commit *)
  aggressive_loads : bool;
      (** loads may issue before older in-block stores resolve, with a
          dependence predictor and violation flushes; off = loads always
          wait (in-order memory) *)
  commit_stores_per_cycle : int;
  max_cycles : int;  (** watchdog *)
}

val trips_grid : t
val inorder_edge : t

val default : t
(** [trips_grid] — every historical call site keeps its meaning. *)

val presets : (string * t) list
(** [[("trips_grid", trips_grid); ("inorder_edge", inorder_edge)]] *)

val name : t -> string
(** The preset name when [t] equals a preset, else ["custom"]. *)

val backend_name : backend -> string

(* -- geometry ------------------------------------------------------ *)

val num_tiles : t -> int
val tile_row : t -> int -> int
val tile_col : t -> int -> int

val hops : t -> int -> int -> int
(** Operand-network cost between two execution tiles. *)

val reg_access_hops : t -> int -> int
(** Cost between a tile and the register file. *)

val mem_access_hops : t -> int -> int
(** Cost between a tile and the memory interface. *)

val same_geometry : t -> t -> bool
(** Do two machines agree on everything a placement depends on (grid
    shape, slot capacity, hop model)? Placements computed for one are
    valid — and identical — for the other. *)

val validate : t -> (unit, string) result
(** Structural sanity: positive geometry, enough slots for a maximal
    128-instruction block, positive issue/window/inflight, non-negative
    latencies, cache shapes the simulators accept. *)

(* -- serialization ------------------------------------------------- *)

val to_compact : t -> string
(** Canonical single-line [key=value;...] encoding of every field.
    Deterministic: structurally equal machines encode identically, so
    the string also serves as a cache-key component. *)

val of_compact : string -> (t, string) result
(** Parses [to_compact] output, a bare preset name ("trips_grid",
    "inorder_edge", "default"), or a preset name followed by overrides
    ("inorder_edge;window=8"); overrides without a leading preset apply
    to [default]. Unknown keys, malformed values, and descriptions
    rejected by {!validate} are errors.
    [of_compact (to_compact m) = Ok m] for every valid [m]. *)
