type t = { data : Bytes.t; mutable stores : int }

let create ~size = { data = Bytes.make size '\000'; stores = 0 }
let size t = Bytes.length t.data
let copy t = { data = Bytes.copy t.data; stores = t.stores }
let equal a b = Bytes.equal a.data b.data
let store_count t = t.stores
let width_bytes = function Opcode.W1 -> 1 | Opcode.W4 -> 4 | Opcode.W8 -> 8

let in_range t ~addr ~bytes =
  (* all-int arithmetic: no boxed intermediates, no generic compares.
     [bytes] is a power of two, so the alignment test is a mask; the
     round-trip equality rejects addresses beyond native-int range *)
  let a = Int64.to_int addr in
  Int64.equal (Int64.of_int a) addr
  && a >= 0
  && a land (bytes - 1) = 0
  && a + bytes <= Bytes.length t.data

let load t ~width ~addr =
  let bytes = width_bytes width in
  if not (in_range t ~addr ~bytes) then Token.with_exc (Token.of_int64 0L)
  else
    let a = Int64.to_int addr in
    let v =
      match width with
      | Opcode.W1 -> Int64.of_int (Char.code (Bytes.get t.data a))
      | Opcode.W4 -> Int64.of_int32 (Bytes.get_int32_le t.data a)
      | Opcode.W8 -> Bytes.get_int64_le t.data a
    in
    let v =
      match width with
      | Opcode.W1 ->
          (* sign-extend byte *)
          if Int64.logand v 0x80L <> 0L then Int64.logor v (Int64.lognot 0xFFL)
          else v
      | Opcode.W4 | Opcode.W8 -> v
    in
    Token.of_int64 v

let store t ~width ~addr v =
  let bytes = width_bytes width in
  if not (in_range t ~addr ~bytes) then Error ()
  else begin
    let a = Int64.to_int addr in
    (match width with
    | Opcode.W1 ->
        Bytes.set t.data a (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
    | Opcode.W4 -> Bytes.set_int32_le t.data a (Int64.to_int32 v)
    | Opcode.W8 -> Bytes.set_int64_le t.data a v);
    t.stores <- t.stores + 1;
    Ok ()
  end

let load_int t addr = Bytes.get_int64_le t.data addr
let store_int t addr v = Bytes.set_int64_le t.data addr v
let load_float t addr = Int64.float_of_bits (load_int t addr)
let store_float t addr v = store_int t addr (Int64.bits_of_float v)

let blit_ints t addr vs =
  List.iteri (fun i v -> store_int t (addr + (8 * i)) v) vs
