(** Whole programs: a set of named blocks plus an entry point.

    Inter-block communication happens exclusively through the 128
    architectural registers and memory (Section 3); there is no other
    global state. *)

type t = { entry : string; blocks : (string * Block.t) list }

val make : entry:string -> Block.t list -> (t, string) result
(** Fails on duplicate block names, a missing entry block, or any exit
    naming an unknown block. *)

val find : t -> string -> Block.t option
val validate : t -> (unit, string list) result
(** Validates every block and the inter-block exit graph. *)

val digest : t -> string
(** Hex content address of the program (digest of its marshalled
    value). Two structurally equal programs share a digest; used to key
    decode-once block images and persistent result caches. *)

val pp : Format.formatter -> t -> unit
